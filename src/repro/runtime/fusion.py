"""Fused chain execution: one driver pushes batches through a whole chain.

The executor calls :func:`run_fused_chain` when it evaluates the tail of
a :class:`~repro.runtime.plan.FusedChain` (see
:mod:`repro.optimizer.chaining` for what the planner fuses).  The chain's
head inputs and union taps are shipped exactly as the unfused
interpreter would ship them — same strategies, same constant-path edge
caching, same counters — and everything between them runs in-process:
each partition's records are pushed through the chain's operator stages
one :class:`~repro.common.batch.RecordBatch`-sized chunk at a time, with
no per-operator memo entries, no intermediate partition lists, and no
per-edge ship calls.

**Counter parity.**  Fusion must be invisible to the logical-counter
audit: every fused operator still reports its per-operator
``records_processed`` (zero counts included, so counter *keys* match),
every fused-away forward edge still reports its records as locally
shipped (mirroring :func:`repro.runtime.channels._ship_forward`), and the
invariant checker still audits every operator's per-partition
input/output conservation.  Under SPMD each worker runs the same chain
over its own partition slot, so merged worker counters sum to the
simulator's totals exactly as they do unfused.

**Tracing.**  One ``chain[map→filter→…]`` span (category ``chain``)
replaces the tail's operator span; nested zero-width per-operator child
spans carry each member's counter deltas explicitly, so per-operator
attribution survives in Perfetto even though the operators no longer
execute separately.
"""

from __future__ import annotations

from repro.common import columns as columns_mod
from repro.dataflow.contracts import Contract


def chain_reads(chain):
    """The producer nodes a fused chain evaluates when it runs.

    These are the chain head's inputs plus every union tap — the edges
    that still ship normally.  The executor's superstep-memo eviction
    uses this to attribute the chain tail's reads to the right
    producers (interior spine nodes are never read at all).
    """
    reads = list(chain.nodes[0].inputs)
    for i, node in enumerate(chain.nodes[1:], start=1):
        if node.contract is Contract.UNION:
            reads.append(node.inputs[1 - chain.spine_inputs[i - 1]])
    return reads


def _stage_fn(node, columnar=False):
    """A per-chunk transform for one unary record-wise operator.

    Under columnar execution, a Map carrying a ``columnar_udf`` opt-in
    (see :meth:`repro.dataflow.dataset.DataSet.map`) transforms whole
    column buffers per chunk; chunks that don't columnarize — or nodes
    without the opt-in — run the row UDF exactly as before.
    """
    fn = node.udf
    contract = node.contract
    if contract is Contract.MAP:
        column_fn = getattr(node, "columnar_udf", None)
        if columnar and column_fn is not None:
            def map_chunk_columnar(records):
                cols = columns_mod.columnarize(records)
                if cols is not None:
                    _arity, columns = cols
                    out_columns, out_length = column_fn(
                        columns, len(records)
                    )
                    return columns_mod.materialize_rows(
                        out_columns, out_length
                    )
                return [fn(r) for r in records]
            return map_chunk_columnar
        return lambda records: [fn(r) for r in records]
    if contract is Contract.FILTER:
        return lambda records: [r for r in records if fn(r)]
    if contract is Contract.FLAT_MAP:
        def flat_map_chunk(records):
            out = []
            for r in records:
                out.extend(fn(r))
            return out
        return flat_map_chunk
    raise AssertionError(f"{node.name}: not a fusable unary contract")


def _compile_items(chain, columnar=False):
    """Split the spine into unions and maximal unary segments.

    Returns a list of items: ``("segment", [(spine index, chunk fn),
    ...])`` for runs of Map/FlatMap/Filter, and ``("union", spine index,
    spine side)`` for each union (``spine side`` is None for a union at
    the head, whose both inputs arrive via the head shipping).
    """
    items = []
    segment: list = []
    for i, node in enumerate(chain.nodes):
        if node.contract is Contract.UNION:
            if segment:
                items.append(("segment", segment))
                segment = []
            side = None if i == 0 else chain.spine_inputs[i - 1]
            items.append(("union", i, side))
        else:
            segment.append((i, _stage_fn(node, columnar)))
    if segment:
        items.append(("segment", segment))
    return items


def run_fused_chain(executor, chain, step_memo, scope):
    """Execute ``chain`` and return its output partitions.

    For a plain chain the result is the tail operator's output (the
    executor memoizes it under the tail's id as usual); for a combine
    chain it is the pre-shuffle *combined* partitions, which the
    executor's combiner branch then ships and aggregates exactly like
    the unfused path.
    """
    tracer = executor.tracer
    span = None
    if tracer is not None:
        span = tracer.begin(
            chain.describe(), category="chain",
            operators="→".join(n.name for n in chain.nodes),
            length=len(chain.nodes) + (1 if chain.combine_node else 0),
        )
    try:
        return _run(executor, chain, step_memo, scope, tracer)
    finally:
        if span is not None:
            tracer.end(span)


def _run(executor, chain, step_memo, scope, tracer):
    head = chain.nodes[0]
    n_ops = len(chain.nodes)
    parallelism = executor.parallelism
    batch_size = executor.batch_size
    metrics = executor.metrics
    checker = metrics.invariants

    # ship the chain's real channels: the head's inputs and every union
    # tap, with the same strategies and edge caching as unfused execution
    head_shipped = executor._shipped_inputs(head, step_memo, scope)
    taps: dict[int, list] = {}  # spine index -> shipped tap partitions
    for i, node in enumerate(chain.nodes[1:], start=1):
        if node.contract is Contract.UNION:
            taps[i] = executor._ship_one_input(
                node, 1 - chain.spine_inputs[i - 1], step_memo, scope
            )

    items = _compile_items(chain, columnar=executor.columnar)
    combine = chain.combine_node

    # per-operator totals for counters and spans
    total_in = [0] * n_ops
    total_out = [0] * n_ops
    combine_in = 0
    combine_out = 0
    out_partitions = []
    for p in range(parallelism):
        stream: list = []
        per_op_in: list = [None] * n_ops  # input sizes per op, this partition
        per_op_out = [0] * n_ops
        for item in items:
            if item[0] == "union":
                _, i, side = item
                if side is None:  # union at the head: both inputs shipped
                    left = head_shipped[0][p]
                    right = head_shipped[1][p]
                else:
                    tap = taps[i][p]
                    left = stream if side == 0 else tap
                    right = tap if side == 0 else stream
                per_op_in[i] = [len(left), len(right)]
                stream = list(left) + list(right)
                per_op_out[i] = len(stream)
            else:
                segment = item[1]
                if segment[0][0] == 0:  # head segment: take the input
                    stream = head_shipped[0][p]
                stream = _run_segment(
                    segment, stream, batch_size, per_op_in, per_op_out
                )
        if combine is not None:
            per_part_in = len(stream)
            stream = _combine_partition(combine, stream, batch_size)
            combine_in += per_part_in
            combine_out += len(stream)
        out_partitions.append(stream)

        for i, node in enumerate(chain.nodes):
            ins = per_op_in[i]
            if ins is None:
                ins = [0] if node.contract is not Contract.UNION else [0, 0]
            total_in[i] += sum(ins)
            total_out[i] += per_op_out[i]
            if checker is not None:
                checker.check_driver(
                    node.name, node.contract, ins, per_op_out[i]
                )

    # per-operator logical counters: identical totals (and identical
    # Counter keys — zero counts create them) to unfused execution
    for i, node in enumerate(chain.nodes):
        metrics.add_processed(node.name, total_in[i])
    if combine is not None:
        metrics.add_processed(f"{combine.name}.combine", combine_in)

    # fused-away spine edges still count as local forward ships, one
    # accounting entry per edge, mirroring channels._ship_forward (all
    # records local, zero batches framed); the pre-combine edge never
    # ships in the unfused combiner branch either, so it stays silent
    for i in range(n_ops - 1):
        metrics.add_shipped(local=total_out[i], remote=0)

    if tracer is not None:
        for i, node in enumerate(chain.nodes):
            op_span = tracer.begin(
                f"operator:{node.name}", category="operator",
                contract=node.contract.value, fused=True,
            )
            tracer.end(op_span, counters={
                "records_processed": total_in[i],
                "records_out": total_out[i],
            })
        if combine is not None:
            op_span = tracer.begin(
                f"operator:{combine.name}.combine", category="operator",
                contract=combine.contract.value, fused=True,
            )
            tracer.end(op_span, counters={
                "records_processed": combine_in,
                "records_out": combine_out,
            })
    return out_partitions


def _run_segment(segment, stream, batch_size, per_op_in, per_op_out):
    """Push one partition's records through a unary segment in batches.

    Each ``batch_size`` chunk traverses the whole segment before the
    next chunk starts — the cache-friendly pass that makes fusion a
    performance win.  Chunking never reorders records, so output is
    bitwise identical to whole-partition evaluation.
    """
    for i, _fn in segment:
        per_op_in[i] = [0]
    if not stream:
        return []
    if not isinstance(stream, list):
        # a lazy or batch-backed partition (disk view, RecordBatch):
        # materialize once so chunk slicing below works on any input
        stream = list(stream)
    out: list = []
    n = len(stream)
    step = batch_size if batch_size and batch_size > 0 else n
    for start in range(0, n, step):
        chunk = stream[start:start + step]
        for i, fn in segment:
            per_op_in[i][0] += len(chunk)
            if chunk:
                chunk = fn(chunk)
            per_op_out[i] += len(chunk)
        out.extend(chunk)
    return out


def _combine_partition(node, records, batch_size):
    """One partition's pre-shuffle combine pass (Sec. 6.1), identical to
    :func:`repro.runtime.drivers.apply_combiner` on a single partition."""
    from repro.runtime import drivers

    fn = node.udf
    table: dict = {}
    get = table.get
    for chunk, keys in drivers._key_chunks(
        records, node.key_fields[0], batch_size
    ):
        for k, record in zip(keys, chunk):
            held = get(k)
            table[k] = record if held is None else fn(held, record)
    return list(table.values())
