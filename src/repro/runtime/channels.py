"""Shipping channels between operators of the simulated cluster.

A dataset at rest is a list of ``parallelism`` partitions, each a list of
tuple records.  Shipping a dataset re-routes records according to a
:class:`~repro.runtime.plan.ShipStrategy`; every record transfer is
counted as local (stays in its partition) or remote (crosses a partition
boundary — a "network message" in the paper's terms).

**Partition-count contract.**  Every ship requires exactly
``parallelism`` input partitions and produces exactly ``parallelism``
output partitions.  Datasets at rest always hold one partition per
worker (the loaders below guarantee it), so partition index *i* means
"worker *i*" on both sides of a channel — which is what makes
``target == source_index`` a valid locality test.  Shipping a dataset
whose partition count disagrees with the cluster width is an error, not
a silent re-interpretation: before this contract was enforced, the hash
and gather channels mislabelled local vs remote counts whenever the two
partitionings diverged.

Hashing is deterministic across processes so that plans, tests, and
benchmarks are reproducible.

**Batched data plane.**  Ships move records in
:class:`~repro.common.batch.RecordBatch` chunks of ``batch_size``
records: the hash channel computes one key/hash vector per chunk and
scatters from it (one hash pass per batch instead of one
extract+hash call per record), and under SPMD the exchange splits
frames into size-bounded chunks instead of one monolithic pickle.
``batch_size=None`` keeps the whole partition in one chunk;
``batch_size=1`` is the degenerate record-at-a-time mode.  Chunking
never changes results, record order, or the local/remote split — only
the framing — and the number of framed chunks is counted on
``metrics.batches_shipped`` identically in both backends.

When the shipping metrics collector carries an
:class:`~repro.runtime.invariants.InvariantChecker`, every ship is
audited after the fact: conservation (records out equal records in),
placement (hash-shipped records land on ``partition_index(key)``), and
the local/remote split recomputed independently per record.
"""

from __future__ import annotations

from repro.common.batch import RecordBatch
from repro.runtime.plan import ShipKind


def empty_partitions(parallelism: int) -> list[list]:
    return [[] for _ in range(parallelism)]


def _chunk_count(n: int, batch_size) -> int:
    """How many batch chunks a partition of ``n`` records frames."""
    if n == 0:
        return 0
    if batch_size is None:
        return 1
    return -(-n // batch_size)


def ship(partitions, strategy, parallelism, metrics=None, cluster=None,
         batch_size=None, max_frame_bytes=None, columnar=False,
         count_as=None, baseline_split=None):
    """Move ``partitions`` according to ``strategy``; returns new partitions.

    Enforces the partition-count contract above: ``partitions`` must hold
    exactly ``parallelism`` entries for every strategy.  Local/remote
    accounting is recorded on ``metrics`` and, when an invariant checker
    is attached, audited against a per-record recomputation.

    When ``cluster`` is an SPMD worker context, non-forward ships move
    records over the cluster's real all-to-all exchange instead of
    in-process list shuffling; forward ships never cross partitions, so
    they take the local path even under SPMD.

    ``batch_size`` frames the move in record-batch chunks (see the
    module docstring); ``max_frame_bytes`` additionally bounds the
    serialized size of one SPMD fabric frame.

    ``columnar`` engages the struct-of-arrays fast paths: the hash
    scatter computes partition targets with one vectorized pass over
    the int64 key column when the batch has one (falling back to the
    row loop otherwise), and the SPMD exchange frames fixed-width
    columns as raw buffers.  Targets, output order, and the
    local/remote split are bitwise identical in both modes.

    **Adaptive counter virtualization.**  When the executor performs a
    mid-iteration plan switch (:mod:`repro.optimizer.adaptive`), the
    *physical* routing follows ``strategy`` but the run must stay
    observationally identical to the static baseline plan.  ``count_as``
    names the baseline strategy: the channel span takes its kind (span
    trees keep the baseline's structure) and ``baseline_split`` — the
    ``(local, remote)`` attribution the baseline plan would have
    recorded, computed by the caller — is what reaches
    ``metrics.add_shipped``.  The invariant checker still audits the
    *physical* strategy against the physically recomputed per-record
    split, so conservation and placement laws keep their teeth.
    """
    if len(partitions) != parallelism:
        raise ValueError(
            f"{strategy.kind.value} shipping requires exactly "
            f"{parallelism} input partitions, got {len(partitions)}: "
            "datasets at rest hold one partition per worker "
            "(the partition-count contract)"
        )
    kind = strategy.kind
    # one span covers the ship whichever path it takes, so traces have
    # identical structure across the in-process and SPMD settings; a
    # count_as override names the span by the *baseline* kind so plan
    # switches leave the span tree untouched
    span_kind = (count_as or strategy).kind
    tracer = metrics.tracer if metrics is not None else None
    span = None
    if tracer is not None:
        span = tracer.begin(
            f"ship:{span_kind.value}", category="channel",
            kind=span_kind.value,
            fanout=parallelism, batch_size=batch_size or 0,
        )
    try:
        if (
            cluster is not None
            and not cluster.is_local
            and cluster.size > 1
            and kind is not ShipKind.FORWARD
        ):
            return _ship_spmd(
                partitions, strategy, parallelism, metrics, cluster,
                batch_size=batch_size, max_frame_bytes=max_frame_bytes,
                columnar=columnar, baseline_split=baseline_split,
            )
        if kind is ShipKind.FORWARD:
            out, local, remote = _ship_forward(partitions)
            batches = 0
        elif kind is ShipKind.PARTITION_HASH:
            out, local, remote, batches = _ship_hash(
                partitions, strategy.key_fields, parallelism,
                batch_size=batch_size, metrics=metrics, columnar=columnar,
            )
        elif kind is ShipKind.BROADCAST:
            out, local, remote = _ship_broadcast(partitions, parallelism)
            batches = parallelism * sum(
                _chunk_count(len(p), batch_size) for p in partitions
            )
        elif kind is ShipKind.GATHER:
            out, local, remote = _ship_gather(partitions, parallelism)
            batches = sum(_chunk_count(len(p), batch_size) for p in partitions)
        else:
            raise ValueError(f"unknown ship kind {kind}")
        if metrics is not None:
            if baseline_split is not None:
                metrics.add_shipped(local=baseline_split[0],
                                    remote=baseline_split[1])
            else:
                metrics.add_shipped(local=local, remote=remote)
            if batches:
                metrics.add_batches_shipped(batches)
            checker = metrics.invariants
            if checker is not None:
                checker.check_ship(
                    strategy, partitions, out, parallelism, local, remote
                )
        return out
    finally:
        if span is not None:
            tracer.end(span)


def _ship_forward(partitions):
    total = sum(len(p) for p in partitions)
    # lazy (disk-backed) partitions pass through unmaterialized so a
    # forward ship out of an out-of-core iteration keeps streaming
    out = [
        p if getattr(p, "is_lazy_partition", False) else list(p)
        for p in partitions
    ]
    return out, total, 0


def _ship_hash(partitions, key_fields, parallelism, batch_size=None,
               metrics=None, columnar=False):
    checker = metrics.invariants if metrics is not None else None
    if columnar:
        scattered = _ship_hash_columnar(
            partitions, key_fields, parallelism, batch_size, checker
        )
        if scattered is not None:
            return scattered
    out = empty_partitions(parallelism)
    appends = [p.append for p in out]
    local = 0
    remote = 0
    batches = 0
    # source_index and target index refer to the same partitioning: the
    # contract in ship() guarantees len(partitions) == parallelism
    for source_index, part in enumerate(partitions):
        if not part:
            continue
        for chunk in RecordBatch.wrap(part, key_fields).split(batch_size):
            if checker is not None:
                checker.check_batch(chunk)
            targets = chunk.partition_targets(
                parallelism, columnar_mode=columnar
            )
            for target, record in zip(targets, chunk.records):
                appends[target](record)
            here = targets.count(source_index)
            local += here
            remote += len(targets) - here
            batches += 1
    return out, local, remote, batches


def _ship_hash_columnar(partitions, key_fields, parallelism,
                        batch_size, checker):
    """Column-at-a-time hash scatter for columnar-resident inputs.

    Engages only when every non-empty partition is a column-born
    :class:`RecordBatch` whose chunks scatter (all fixed-width columns,
    int64 key vector): each chunk's records are grouped by one
    vectorized hash pass (:meth:`RecordBatch.scatter`) and the groups
    concatenated per target as column buffers — no row materializes
    anywhere on the path, and the output partitions are themselves
    column-born batches ready for the next columnar consumer.  Output
    record order, the local/remote split, and the ``batches`` count are
    identical to the row loop's.  Returns ``None`` to fall back when
    any partition is row-resident or any chunk carries an object
    column (partially-gathered work is discarded; the row loop redoes
    it from scratch).
    """
    gathered: list[list] = [[] for _ in range(parallelism)]
    local = 0
    remote = 0
    batches = 0
    for source_index, part in enumerate(partitions):
        if isinstance(part, RecordBatch):
            if not len(part):
                continue
            if part._records is not None or not part.has_columns():
                return None
        elif not part:
            continue
        else:
            return None
        wrapped = RecordBatch.wrap(part, key_fields)
        for chunk in wrapped.split(batch_size):
            if checker is not None:
                checker.check_batch(chunk)
            groups = chunk.scatter(parallelism)
            if groups is None:
                return None
            for target, group in enumerate(groups):
                gathered[target].append(group)
            here = len(groups[source_index])
            local += here
            remote += len(chunk) - here
            batches += 1
    out = [
        RecordBatch.merge(groups) if groups else []
        for groups in gathered
    ]
    return out, local, remote, batches


def _ship_broadcast(partitions, parallelism):
    all_records = [record for part in partitions for record in part]
    out = [list(all_records) for _ in range(parallelism)]
    return out, len(all_records), len(all_records) * (parallelism - 1)


def _ship_gather(partitions, parallelism):
    local = len(partitions[0]) if partitions else 0
    remote = sum(len(p) for p in partitions[1:])
    out = empty_partitions(parallelism)
    out[0] = [record for part in partitions for record in part]
    return out, local, remote


def _ship_spmd(partitions, strategy, parallelism, metrics, cluster,
               batch_size=None, max_frame_bytes=None, columnar=False,
               baseline_split=None):
    """One SPMD worker's side of a ship: frame, exchange, reassemble.

    The worker owns only ``partitions[rank]`` (the other slots are empty
    under localization).  It frames its records per the strategy, runs
    the cluster's all-to-all exchange, and rebuilds its slot by
    concatenating received frames in ascending source-rank order — the
    same order the in-process channels produce by scanning source
    partitions, which is what keeps SPMD results and counters bitwise
    identical to the simulator's.

    The worker frames its slot in ``batch_size`` chunks (one key-hash
    vector per chunk, same as the in-process hash channel) and the
    exchange ships each target frame as chunked, size-bounded fabric
    payloads instead of one monolithic pickle.  The number of chunks
    framed from the local slot matches what the simulator counts for
    this partition, so ``batches_shipped`` agrees across backends.
    """
    rank = cluster.rank
    local_in = partitions[rank]
    n_in = len(local_in)
    kind = strategy.kind
    checker = metrics.invariants if metrics is not None else None
    frames: list[list] = [[] for _ in range(parallelism)]
    if kind is ShipKind.PARTITION_HASH:
        appends = [f.append for f in frames]
        batches = 0
        if local_in:
            wrapped = RecordBatch.wrap(local_in, strategy.key_fields)
            for chunk in wrapped.split(batch_size):
                if checker is not None:
                    checker.check_batch(chunk)
                targets = chunk.partition_targets(
                    parallelism, columnar_mode=columnar
                )
                for target, record in zip(targets, chunk.records):
                    appends[target](record)
                batches += 1
        local = len(frames[rank])
        remote = n_in - local
    elif kind is ShipKind.BROADCAST:
        frames = [list(local_in) for _ in range(parallelism)]
        local = n_in
        remote = n_in * (parallelism - 1)
        batches = parallelism * _chunk_count(n_in, batch_size)
    elif kind is ShipKind.GATHER:
        frames[0] = list(local_in)
        local = n_in if rank == 0 else 0
        remote = 0 if rank == 0 else n_in
        batches = _chunk_count(n_in, batch_size)
    else:
        raise ValueError(f"unknown ship kind {kind}")
    bytes_before = cluster.bytes_sent
    zc_cols_before = cluster.columns_zero_copied
    zc_bytes_before = cluster.bytes_zero_copied
    received_frames = cluster.exchange(
        frames, batch_size=batch_size, max_frame_bytes=max_frame_bytes,
        columnar=columnar, key_fields=getattr(strategy, "key_fields", None),
    )
    out = empty_partitions(parallelism)
    out[rank] = [
        record for frame in received_frames for record in frame
    ]
    if metrics is not None:
        metrics.add_bytes_shipped(cluster.bytes_sent - bytes_before)
        metrics.add_zero_copied(
            cluster.columns_zero_copied - zc_cols_before,
            cluster.bytes_zero_copied - zc_bytes_before,
        )
        if baseline_split is not None:
            metrics.add_shipped(local=baseline_split[0],
                                remote=baseline_split[1])
        else:
            metrics.add_shipped(local=local, remote=remote)
        if batches:
            metrics.add_batches_shipped(batches)
        if checker is not None:
            checker.check_exchange(
                strategy, local_in, frames, out[rank], parallelism, rank,
                local, remote,
            )
    return out


def merge(partitions) -> list:
    """Flatten partitions into one list (driver-side collect)."""
    return [record for part in partitions for record in part]


def partition_records(records, key_fields, parallelism) -> list[list]:
    """Hash-partition a flat record list (used to load initial datasets)."""
    out = empty_partitions(parallelism)
    if not records:
        return out
    batch = RecordBatch.wrap(records, key_fields)
    for target, record in zip(
        batch.partition_targets(parallelism), batch.records
    ):
        out[target].append(record)
    return out


def round_robin(records, parallelism) -> list[list]:
    """Spread a flat record list evenly (source loading, key-less data)."""
    out = empty_partitions(parallelism)
    for i, record in enumerate(records):
        out[i % parallelism].append(record)
    return out
