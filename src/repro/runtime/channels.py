"""Shipping channels between operators of the simulated cluster.

A dataset at rest is a list of ``parallelism`` partitions, each a list of
tuple records.  Shipping a dataset re-routes records according to a
:class:`~repro.runtime.plan.ShipStrategy`; every record transfer is
counted as local (stays in its partition) or remote (crosses a partition
boundary — a "network message" in the paper's terms).

**Partition-count contract.**  Every ship requires exactly
``parallelism`` input partitions and produces exactly ``parallelism``
output partitions.  Datasets at rest always hold one partition per
worker (the loaders below guarantee it), so partition index *i* means
"worker *i*" on both sides of a channel — which is what makes
``target == source_index`` a valid locality test.  Shipping a dataset
whose partition count disagrees with the cluster width is an error, not
a silent re-interpretation: before this contract was enforced, the hash
and gather channels mislabelled local vs remote counts whenever the two
partitionings diverged.

Hashing is deterministic across processes so that plans, tests, and
benchmarks are reproducible.

When the shipping metrics collector carries an
:class:`~repro.runtime.invariants.InvariantChecker`, every ship is
audited after the fact: conservation (records out equal records in),
placement (hash-shipped records land on ``partition_index(key)``), and
the local/remote split recomputed independently per record.
"""

from __future__ import annotations

from repro.common.hashing import partition_index
from repro.common.keys import KeyExtractor
from repro.runtime.plan import ShipKind


def empty_partitions(parallelism: int) -> list[list]:
    return [[] for _ in range(parallelism)]


def ship(partitions, strategy, parallelism, metrics=None, cluster=None):
    """Move ``partitions`` according to ``strategy``; returns new partitions.

    Enforces the partition-count contract above: ``partitions`` must hold
    exactly ``parallelism`` entries for every strategy.  Local/remote
    accounting is recorded on ``metrics`` and, when an invariant checker
    is attached, audited against a per-record recomputation.

    When ``cluster`` is an SPMD worker context, non-forward ships move
    records over the cluster's real all-to-all exchange instead of
    in-process list shuffling; forward ships never cross partitions, so
    they take the local path even under SPMD.
    """
    if len(partitions) != parallelism:
        raise ValueError(
            f"{strategy.kind.value} shipping requires exactly "
            f"{parallelism} input partitions, got {len(partitions)}: "
            "datasets at rest hold one partition per worker "
            "(the partition-count contract)"
        )
    kind = strategy.kind
    # one span covers the ship whichever path it takes, so traces have
    # identical structure across the in-process and SPMD settings
    tracer = metrics.tracer if metrics is not None else None
    span = None
    if tracer is not None:
        span = tracer.begin(
            f"ship:{kind.value}", category="channel", kind=kind.value,
            fanout=parallelism,
        )
    try:
        if (
            cluster is not None
            and not cluster.is_local
            and cluster.size > 1
            and kind is not ShipKind.FORWARD
        ):
            return _ship_spmd(
                partitions, strategy, parallelism, metrics, cluster
            )
        if kind is ShipKind.FORWARD:
            out, local, remote = _ship_forward(partitions)
        elif kind is ShipKind.PARTITION_HASH:
            out, local, remote = _ship_hash(
                partitions, strategy.key_fields, parallelism
            )
        elif kind is ShipKind.BROADCAST:
            out, local, remote = _ship_broadcast(partitions, parallelism)
        elif kind is ShipKind.GATHER:
            out, local, remote = _ship_gather(partitions, parallelism)
        else:
            raise ValueError(f"unknown ship kind {kind}")
        if metrics is not None:
            metrics.add_shipped(local=local, remote=remote)
            checker = metrics.invariants
            if checker is not None:
                checker.check_ship(
                    strategy, partitions, out, parallelism, local, remote
                )
        return out
    finally:
        if span is not None:
            tracer.end(span)


def _ship_forward(partitions):
    total = sum(len(p) for p in partitions)
    return [list(p) for p in partitions], total, 0


def _ship_hash(partitions, key_fields, parallelism):
    extract = KeyExtractor(key_fields)
    out = empty_partitions(parallelism)
    local = 0
    remote = 0
    # source_index and target index refer to the same partitioning: the
    # contract in ship() guarantees len(partitions) == parallelism
    for source_index, part in enumerate(partitions):
        for record in part:
            target = partition_index(extract(record), parallelism)
            out[target].append(record)
            if target == source_index:
                local += 1
            else:
                remote += 1
    return out, local, remote


def _ship_broadcast(partitions, parallelism):
    all_records = [record for part in partitions for record in part]
    out = [list(all_records) for _ in range(parallelism)]
    return out, len(all_records), len(all_records) * (parallelism - 1)


def _ship_gather(partitions, parallelism):
    local = len(partitions[0]) if partitions else 0
    remote = sum(len(p) for p in partitions[1:])
    out = empty_partitions(parallelism)
    out[0] = [record for part in partitions for record in part]
    return out, local, remote


def _ship_spmd(partitions, strategy, parallelism, metrics, cluster):
    """One SPMD worker's side of a ship: frame, exchange, reassemble.

    The worker owns only ``partitions[rank]`` (the other slots are empty
    under localization).  It frames its records per the strategy, runs
    the cluster's all-to-all exchange, and rebuilds its slot by
    concatenating received frames in ascending source-rank order — the
    same order the in-process channels produce by scanning source
    partitions, which is what keeps SPMD results and counters bitwise
    identical to the simulator's.
    """
    rank = cluster.rank
    local_in = partitions[rank]
    n_in = len(local_in)
    kind = strategy.kind
    frames: list[list] = [[] for _ in range(parallelism)]
    if kind is ShipKind.PARTITION_HASH:
        extract = KeyExtractor(strategy.key_fields)
        for record in local_in:
            frames[partition_index(extract(record), parallelism)].append(
                record
            )
        local = len(frames[rank])
        remote = n_in - local
    elif kind is ShipKind.BROADCAST:
        frames = [list(local_in) for _ in range(parallelism)]
        local = n_in
        remote = n_in * (parallelism - 1)
    elif kind is ShipKind.GATHER:
        frames[0] = list(local_in)
        local = n_in if rank == 0 else 0
        remote = 0 if rank == 0 else n_in
    else:
        raise ValueError(f"unknown ship kind {kind}")
    bytes_before = cluster.bytes_sent
    received_frames = cluster.exchange(frames)
    out = empty_partitions(parallelism)
    out[rank] = [
        record for frame in received_frames for record in frame
    ]
    if metrics is not None:
        metrics.add_bytes_shipped(cluster.bytes_sent - bytes_before)
        metrics.add_shipped(local=local, remote=remote)
        checker = metrics.invariants
        if checker is not None:
            checker.check_exchange(
                strategy, local_in, frames, out[rank], parallelism, rank,
                local, remote,
            )
    return out


def merge(partitions) -> list:
    """Flatten partitions into one list (driver-side collect)."""
    return [record for part in partitions for record in part]


def partition_records(records, key_fields, parallelism) -> list[list]:
    """Hash-partition a flat record list (used to load initial datasets)."""
    extract = KeyExtractor(key_fields)
    out = empty_partitions(parallelism)
    for record in records:
        out[partition_index(extract(record), parallelism)].append(record)
    return out


def round_robin(records, parallelism) -> list[list]:
    """Spread a flat record list evenly (source loading, key-less data)."""
    out = empty_partitions(parallelism)
    for i, record in enumerate(records):
        out[i % parallelism].append(record)
    return out
