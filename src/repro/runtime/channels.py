"""Shipping channels between operators of the simulated cluster.

A dataset at rest is a list of ``parallelism`` partitions, each a list of
tuple records.  Shipping a dataset re-routes records according to a
:class:`~repro.runtime.plan.ShipStrategy`; every record transfer is
counted as local (stays in its partition) or remote (crosses a partition
boundary — a "network message" in the paper's terms).

Hashing is deterministic across processes so that plans, tests, and
benchmarks are reproducible.
"""

from __future__ import annotations

from repro.common.hashing import partition_index, stable_hash
from repro.common.keys import KeyExtractor
from repro.runtime.plan import ShipKind


def empty_partitions(parallelism: int) -> list[list]:
    return [[] for _ in range(parallelism)]


def ship(partitions, strategy, parallelism, metrics=None):
    """Move ``partitions`` according to ``strategy``; returns new partitions.

    The input partition count may differ from ``parallelism`` only for
    FORWARD when they already agree; partition-changing strategies always
    produce exactly ``parallelism`` output partitions.
    """
    kind = strategy.kind
    if kind is ShipKind.FORWARD:
        return _ship_forward(partitions, parallelism, metrics)
    if kind is ShipKind.PARTITION_HASH:
        return _ship_hash(partitions, strategy.key_fields, parallelism, metrics)
    if kind is ShipKind.BROADCAST:
        return _ship_broadcast(partitions, parallelism, metrics)
    if kind is ShipKind.GATHER:
        return _ship_gather(partitions, parallelism, metrics)
    raise ValueError(f"unknown ship kind {kind}")


def _ship_forward(partitions, parallelism, metrics):
    if len(partitions) != parallelism:
        raise ValueError(
            f"forward shipping cannot change the partition count "
            f"({len(partitions)} -> {parallelism})"
        )
    if metrics is not None:
        metrics.add_shipped(local=sum(len(p) for p in partitions), remote=0)
    return [list(p) for p in partitions]


def _ship_hash(partitions, key_fields, parallelism, metrics):
    extract = KeyExtractor(key_fields)
    out = empty_partitions(parallelism)
    local = 0
    remote = 0
    for source_index, part in enumerate(partitions):
        for record in part:
            target = partition_index(extract(record), parallelism)
            out[target].append(record)
            if target == source_index:
                local += 1
            else:
                remote += 1
    if metrics is not None:
        metrics.add_shipped(local=local, remote=remote)
    return out

def _ship_broadcast(partitions, parallelism, metrics):
    all_records = [record for part in partitions for record in part]
    if metrics is not None:
        metrics.add_shipped(
            local=len(all_records),
            remote=len(all_records) * (parallelism - 1),
        )
    return [list(all_records) for _ in range(parallelism)]


def _ship_gather(partitions, parallelism, metrics):
    local = len(partitions[0]) if partitions else 0
    remote = sum(len(p) for p in partitions[1:])
    if metrics is not None:
        metrics.add_shipped(local=local, remote=remote)
    out = empty_partitions(parallelism)
    out[0] = [record for part in partitions for record in part]
    return out


def merge(partitions) -> list:
    """Flatten partitions into one list (driver-side collect)."""
    return [record for part in partitions for record in part]


def partition_records(records, key_fields, parallelism) -> list[list]:
    """Hash-partition a flat record list (used to load initial datasets)."""
    extract = KeyExtractor(key_fields)
    out = empty_partitions(parallelism)
    for record in records:
        out[partition_index(extract(record), parallelism)].append(record)
    return out


def round_robin(records, parallelism) -> list[list]:
    """Spread a flat record list evenly (source loading, key-less data)."""
    out = empty_partitions(parallelism)
    for i, record in enumerate(records):
        out[i % parallelism].append(record)
    return out
