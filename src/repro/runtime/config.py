"""Runtime configuration flags shared by all engines.

The simulated dataflow engine, the Spark-like engine, and the Pregel-like
engine all accept a :class:`RuntimeConfig`.  Today it carries one flag:
``check_invariants``, which attaches the debug-mode audit layer of
:mod:`repro.runtime.invariants` to the engine's metric collector.

Invariant checking defaults to **on under pytest** (so the entire test
suite dogfoods the conservation laws) and off otherwise (benchmark runs
measure the unchecked hot path).  The ``REPRO_CHECK_INVARIANTS``
environment variable overrides both defaults: any of ``1/true/yes/on``
forces checking on, ``0/false/no/off`` forces it off.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field

_TRUTHY = ("1", "true", "yes", "on")
_FALSY = ("0", "false", "no", "off", "")


def invariant_checking_default() -> bool:
    """True when invariant checks should be active by default."""
    override = os.environ.get("REPRO_CHECK_INVARIANTS")
    if override is not None:
        value = override.strip().lower()
        if value in _TRUTHY:
            return True
        if value in _FALSY:
            return False
        raise ValueError(
            f"REPRO_CHECK_INVARIANTS must be one of {_TRUTHY + _FALSY}, "
            f"got {override!r}"
        )
    return "pytest" in sys.modules


@dataclass
class RuntimeConfig:
    """Per-session runtime switches.

    ``check_invariants`` — attach an
    :class:`~repro.runtime.invariants.InvariantChecker` to the session's
    :class:`~repro.runtime.metrics.MetricsCollector`, auditing every
    channel ship, driver call, superstep barrier, and solution-set delta
    application against its conservation law.
    """

    check_invariants: bool = field(default_factory=invariant_checking_default)
