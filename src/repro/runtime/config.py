"""Runtime configuration flags shared by all engines.

The simulated dataflow engine, the Spark-like engine, and the Pregel-like
engine all accept a :class:`RuntimeConfig`.  It carries two switches:
``check_invariants``, which attaches the debug-mode audit layer of
:mod:`repro.runtime.invariants` to the engine's metric collector, and
``trace``, which attaches the span tracer of
:mod:`repro.observability`.

Invariant checking defaults to **on under pytest** (so the entire test
suite dogfoods the conservation laws) and off otherwise (benchmark runs
measure the unchecked hot path).  The ``REPRO_CHECK_INVARIANTS``
environment variable overrides both defaults: any of ``1/true/yes/on``
forces checking on, ``0/false/no/off`` forces it off.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field

_TRUTHY = ("1", "true", "yes", "on")
_FALSY = ("0", "false", "no", "off", "")


def invariant_checking_default() -> bool:
    """True when invariant checks should be active by default."""
    override = os.environ.get("REPRO_CHECK_INVARIANTS")
    if override is not None:
        value = override.strip().lower()
        if value in _TRUTHY:
            return True
        if value in _FALSY:
            return False
        raise ValueError(
            f"REPRO_CHECK_INVARIANTS must be one of {_TRUTHY + _FALSY}, "
            f"got {override!r}"
        )
    return "pytest" in sys.modules


def batch_size_default() -> int:
    """Records per :class:`~repro.common.batch.RecordBatch` on the data
    plane; ``REPRO_BATCH_SIZE`` overrides (``1`` = record-at-a-time)."""
    override = os.environ.get("REPRO_BATCH_SIZE")
    if override is None:
        return 1024
    try:
        value = int(override)
    except ValueError:
        raise ValueError(
            f"REPRO_BATCH_SIZE must be a positive integer, got {override!r}"
        ) from None
    if value < 1:
        raise ValueError(
            f"REPRO_BATCH_SIZE must be >= 1, got {value}"
        )
    return value


def chaining_default() -> bool:
    """Operator chain fusion is on unless ``REPRO_NO_CHAIN`` disables it.

    ``REPRO_NO_CHAIN`` is an escape hatch: a truthy value (``1/true/
    yes/on``) turns fusion *off* (every operator materializes and every
    forward edge ships, the pre-fusion behaviour), a falsy value keeps
    it on.  Results and logical counters are identical in both modes.
    """
    override = os.environ.get("REPRO_NO_CHAIN")
    if override is None:
        return True
    value = override.strip().lower()
    if value in _TRUTHY:
        return False
    if value in _FALSY:
        return True
    raise ValueError(
        f"REPRO_NO_CHAIN must be one of {_TRUTHY + _FALSY}, "
        f"got {override!r}"
    )


def columnar_default() -> bool:
    """The columnar data plane is on unless ``REPRO_COLUMNAR=0``.

    ``REPRO_COLUMNAR`` is the escape hatch for the struct-of-arrays
    :class:`~repro.common.batch.RecordBatch` layout and its vectorized
    kernels (hash-scatter, join index computation, sort permutations,
    columnar fabric/spill framing).  A falsy value (``0/false/no/off``)
    restores the row-chunk paths everywhere; a truthy value (or unset)
    keeps the columnar paths on.  Results and logical counters are
    bitwise identical in both modes — the cross-backend audit runs both.
    """
    override = os.environ.get("REPRO_COLUMNAR")
    if override is None:
        return True
    value = override.strip().lower()
    if value in _TRUTHY:
        return True
    if value in _FALSY:
        return False
    raise ValueError(
        f"REPRO_COLUMNAR must be one of {_TRUTHY + _FALSY}, "
        f"got {override!r}"
    )


def adaptive_default() -> bool:
    """Adaptive re-optimization is on unless ``REPRO_ADAPTIVE=0``.

    ``REPRO_ADAPTIVE`` is the escape hatch for the statistics-driven
    runtime layer: mid-iteration ship-strategy switches decided from
    *measured* superstep cardinalities (see
    :mod:`repro.optimizer.adaptive`).  A falsy value (``0/false/no/
    off``) pins every iteration to its statically chosen plan; a truthy
    value (or unset) lets the executor re-cost the dynamic path at
    superstep boundaries.  Results, logical counters, and span-tree
    structure are identical in both modes — plan switches are physical
    optimizations, audited like the columnar and chaining planes.
    """
    override = os.environ.get("REPRO_ADAPTIVE")
    if override is None:
        return True
    value = override.strip().lower()
    if value in _TRUTHY:
        return True
    if value in _FALSY:
        return False
    raise ValueError(
        f"REPRO_ADAPTIVE must be one of {_TRUTHY + _FALSY}, "
        f"got {override!r}"
    )


def memory_budget_default() -> int | None:
    """Per-process memory budget in bytes; ``None`` means unbounded.

    ``REPRO_MEMORY_BUDGET`` overrides: a positive integer (bytes)
    activates the out-of-core spill substrate of :mod:`repro.storage`
    for every session that does not set the field explicitly; an empty
    value or ``0`` keeps execution fully in-memory.
    """
    override = os.environ.get("REPRO_MEMORY_BUDGET")
    if override is None or not override.strip():
        return None
    try:
        value = int(override)
    except ValueError:
        raise ValueError(
            f"REPRO_MEMORY_BUDGET must be an integer byte count, "
            f"got {override!r}"
        ) from None
    if value == 0:
        return None
    if value < 0:
        raise ValueError(
            f"REPRO_MEMORY_BUDGET must be >= 0, got {value}"
        )
    return value


def tracing_default() -> bool:
    """Tracing is opt-in: off unless ``REPRO_TRACE`` enables it.

    ``REPRO_TRACE`` accepts a truthy/falsy flag *or* a file path: any
    value outside the flag spellings turns tracing on and names the
    JSONL event log to write (see :func:`trace_path_default`).
    """
    override = os.environ.get("REPRO_TRACE")
    if override is None:
        return False
    return override.strip().lower() not in _FALSY


def trace_path_default() -> str | None:
    """The JSONL path carried by ``REPRO_TRACE``, if it names one."""
    override = os.environ.get("REPRO_TRACE")
    if override is None:
        return None
    value = override.strip()
    if value.lower() in _TRUTHY or value.lower() in _FALSY:
        return None
    return value


def telemetry_default() -> bool:
    """Live telemetry is opt-in: off unless ``REPRO_TELEMETRY`` enables it.

    Any of ``1/true/yes/on`` turns the metric registry, heartbeats, and
    resource ledger on; ``0/false/no/off`` (or unset) keeps every
    instrumented site on the plain ``None``-check fast path.
    """
    override = os.environ.get("REPRO_TELEMETRY")
    if override is None:
        return False
    value = override.strip().lower()
    if value in _TRUTHY:
        return True
    if value in _FALSY:
        return False
    raise ValueError(
        f"REPRO_TELEMETRY must be one of {_TRUTHY + _FALSY}, "
        f"got {override!r}"
    )


def heartbeat_interval_default() -> float:
    """Seconds between worker heartbeats; ``REPRO_HEARTBEAT_INTERVAL``
    overrides (only meaningful when telemetry is on)."""
    override = os.environ.get("REPRO_HEARTBEAT_INTERVAL")
    if override is None:
        return 0.5
    try:
        value = float(override)
    except ValueError:
        raise ValueError(
            f"REPRO_HEARTBEAT_INTERVAL must be a positive number, "
            f"got {override!r}"
        ) from None
    if value <= 0:
        raise ValueError(
            f"REPRO_HEARTBEAT_INTERVAL must be > 0, got {value}"
        )
    return value


@dataclass
class RuntimeConfig:
    """Per-session runtime switches.

    ``check_invariants`` — attach an
    :class:`~repro.runtime.invariants.InvariantChecker` to the session's
    :class:`~repro.runtime.metrics.MetricsCollector`, auditing every
    channel ship, driver call, superstep barrier, and solution-set delta
    application against its conservation law.

    ``trace`` — attach a :class:`~repro.observability.Tracer` to the
    session's collector: optimizer phases, operator execution, channel
    ships, and superstep barriers record a span tree (see
    :mod:`repro.observability`).  Off by default — tracing is opt-in —
    and overridden by the ``REPRO_TRACE`` environment variable: a
    truthy value turns it on, a falsy value off, and any other value is
    treated as *on* plus the path of a JSONL event log to write
    (``trace_path``) when the session executes a plan.

    ``batch_size`` — how many records one
    :class:`~repro.common.batch.RecordBatch` carries on the data plane:
    channels frame their scatter in chunks of this size, drivers build
    key vectors per chunk, and the SPMD fabric splits exchange payloads
    into per-chunk frames.  ``1`` is the degenerate record-at-a-time
    mode (every record pays the full per-batch framing overhead);
    results and logical counters are identical at every setting.

    ``max_frame_bytes`` — upper bound on one serialized fabric frame;
    a batch chunk whose pickle exceeds it is bisected before transport
    (multiprocess backend only — the simulator never serializes).

    ``async_poll_batch`` — how many queue elements one partition drains
    per polling round in asynchronous delta iterations (interleaving
    granularity; any value must converge to the same fixpoint).

    ``chaining`` — fuse maximal runs of record-wise, forward-shipped
    operators into single batch-at-a-time chain drivers (see
    :mod:`repro.optimizer.chaining` and
    :mod:`repro.runtime.fusion`).  On by default; ``REPRO_NO_CHAIN=1``
    is the escape hatch.  Fusion changes neither results nor logical
    counters — only how many memo entries and forward ships the
    interpreter materializes.

    ``columnar`` — run the data plane on the struct-of-arrays
    :class:`~repro.common.batch.RecordBatch` layout: the hash channel
    computes partition targets with one vectorized pass over the int64
    key column, join drivers compute match indices by ``searchsorted``,
    sort drivers take ``argsort`` permutations, and the SPMD fabric
    frames fixed-width columns as raw buffers (zero payload pickling on
    the shm ring).  On by default; ``REPRO_COLUMNAR=0`` is the escape
    hatch back to the row-chunk paths.  Results and logical counters
    are bitwise identical in both modes and on every backend.

    ``memory_budget_bytes`` — per-process budget for operator state in
    bytes, or ``None`` for unbounded in-memory execution (the
    default).  When set, the executor attaches a
    :class:`~repro.storage.SpillManager`: keyed drivers take
    partition-and-spill / external-sort paths once their estimated
    resident state crosses the budget, and delta iterations keep the
    solution set in a disk-backed index.  Results and logical counters
    are bitwise identical at every setting; only the physical
    ``records_spilled`` / ``bytes_spilled`` counters differ.
    ``REPRO_MEMORY_BUDGET`` supplies the default.

    ``telemetry`` — attach a live
    :class:`~repro.observability.telemetry.MetricRegistry` to the
    session: the executor, spill manager, fabric endpoints, and pool
    workers publish counters/gauges/histograms and a resource time
    series while the job runs, pool workers ship heartbeats for the
    :class:`~repro.observability.health.HealthMonitor`, and the session
    keeps a per-job :class:`~repro.observability.telemetry.ResourceLedger`.
    Off by default (every instrumented site is a single ``None`` check);
    ``REPRO_TELEMETRY`` supplies the default.  Telemetry never touches
    results or logical counters — the differential audit's telemetry leg
    enforces bitwise identity.

    ``heartbeat_interval_s`` — cadence of pool-worker heartbeats when
    telemetry is on; ``REPRO_HEARTBEAT_INTERVAL`` supplies the default.

    ``adaptive`` — allow the executor to re-cost an iteration's dynamic
    data path with *measured* superstep cardinalities and switch ship
    strategies mid-iteration (broadcast→repartition once the workset
    crosses the Figure 4 crossover, or the reverse for tiny deltas; see
    :mod:`repro.optimizer.adaptive`).  On by default;
    ``REPRO_ADAPTIVE=0`` is the escape hatch that pins the static plan.
    Switches are observationally invisible: results, logical counters,
    and span-tree structure are bitwise identical with adaptivity on or
    off and across every backend — a switch announces itself only
    through a ``plan_switch`` instant marker and the physical
    ``plan_switches`` counter.
    """

    check_invariants: bool = field(default_factory=invariant_checking_default)
    trace: bool = field(default_factory=tracing_default)
    trace_path: str | None = field(default_factory=trace_path_default)
    batch_size: int = field(default_factory=batch_size_default)
    max_frame_bytes: int = 1 << 20
    async_poll_batch: int = 64
    chaining: bool = field(default_factory=chaining_default)
    columnar: bool = field(default_factory=columnar_default)
    memory_budget_bytes: int | None = field(
        default_factory=memory_budget_default
    )
    telemetry: bool = field(default_factory=telemetry_default)
    heartbeat_interval_s: float = field(
        default_factory=heartbeat_interval_default
    )
    adaptive: bool = field(default_factory=adaptive_default)

    def __post_init__(self):
        for name in ("batch_size", "max_frame_bytes", "async_poll_batch"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeError(
                    f"RuntimeConfig.{name} must be an int, got {value!r}"
                )
            if value < 1:
                raise ValueError(
                    f"RuntimeConfig.{name} must be >= 1, got {value}"
                )
        if not isinstance(self.chaining, bool):
            raise TypeError(
                f"RuntimeConfig.chaining must be a bool, "
                f"got {self.chaining!r}"
            )
        if not isinstance(self.columnar, bool):
            raise TypeError(
                f"RuntimeConfig.columnar must be a bool, "
                f"got {self.columnar!r}"
            )
        if not isinstance(self.adaptive, bool):
            raise TypeError(
                f"RuntimeConfig.adaptive must be a bool, "
                f"got {self.adaptive!r}"
            )
        if not isinstance(self.telemetry, bool):
            raise TypeError(
                f"RuntimeConfig.telemetry must be a bool, "
                f"got {self.telemetry!r}"
            )
        interval = self.heartbeat_interval_s
        if isinstance(interval, bool) or \
                not isinstance(interval, (int, float)) or interval <= 0:
            raise ValueError(
                f"RuntimeConfig.heartbeat_interval_s must be a positive "
                f"number, got {interval!r}"
            )
        budget = self.memory_budget_bytes
        if budget is not None:
            if isinstance(budget, bool) or not isinstance(budget, int):
                raise TypeError(
                    f"RuntimeConfig.memory_budget_bytes must be an int "
                    f"or None, got {budget!r}"
                )
            if budget < 1:
                raise ValueError(
                    f"RuntimeConfig.memory_budget_bytes must be >= 1, "
                    f"got {budget}"
                )
