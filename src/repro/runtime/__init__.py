"""Simulated shared-nothing runtime ("Nephele" stand-in).

The runtime executes physical plans over ``parallelism`` logical
partitions.  Data movement goes through explicit shipping channels that
count local and remote record transfers, so the network behaviour the
paper reasons about (partitioning vs broadcasting, constant-path caching,
workset traffic) is observable even though everything runs in one process.
"""

from repro.common.errors import InvariantViolation
from repro.runtime.config import RuntimeConfig
from repro.runtime.executor import Executor
from repro.runtime.invariants import InvariantChecker, attach_checker
from repro.runtime.metrics import IterationStats, MetricsCollector
from repro.runtime.plan import ExecutionPlan, LocalStrategy, ShipKind, ShipStrategy

__all__ = [
    "ExecutionPlan",
    "Executor",
    "InvariantChecker",
    "InvariantViolation",
    "IterationStats",
    "LocalStrategy",
    "MetricsCollector",
    "RuntimeConfig",
    "ShipKind",
    "ShipStrategy",
    "attach_checker",
]
