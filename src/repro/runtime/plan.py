"""Physical execution plan: shipping and local strategies per operator.

The optimizer (or the naive default planner) annotates every logical edge
with a :class:`ShipStrategy` and every operator with a
:class:`LocalStrategy`.  The executor interprets these annotations; it
never makes strategy decisions itself, which keeps the optimizer's choices
testable end to end (e.g. the two PageRank plans of Figure 4 are two
different annotation sets over the same logical plan).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ShipKind(enum.Enum):
    """How records travel from a producer to a consumer's input slot."""

    FORWARD = "forward"              # stay in the producing partition
    PARTITION_HASH = "partition_hash"  # hash-partition on key fields
    BROADCAST = "broadcast"          # replicate to every partition
    GATHER = "gather"                # collect into partition 0 (sinks)


@dataclass(frozen=True)
class ShipStrategy:
    kind: ShipKind
    key_fields: tuple[int, ...] | None = None

    def __post_init__(self):
        if self.kind is ShipKind.PARTITION_HASH and not self.key_fields:
            raise ValueError("hash partitioning requires key fields")

    def describe(self) -> str:
        if self.kind is ShipKind.PARTITION_HASH:
            return f"partition{list(self.key_fields)}"
        return self.kind.value


FORWARD = ShipStrategy(ShipKind.FORWARD)
BROADCAST = ShipStrategy(ShipKind.BROADCAST)
GATHER = ShipStrategy(ShipKind.GATHER)


def partition_on(key_fields) -> ShipStrategy:
    return ShipStrategy(ShipKind.PARTITION_HASH, tuple(key_fields))


class LocalStrategy(enum.Enum):
    """Per-partition algorithm implementing the operator."""

    NONE = "none"                    # streaming record-at-a-time
    HASH_BUILD_LEFT = "hash_build_left"
    HASH_BUILD_RIGHT = "hash_build_right"
    SORT_MERGE = "sort_merge"
    HASH_AGGREGATE = "hash_aggregate"
    SORT_AGGREGATE = "sort_aggregate"
    SORT_COGROUP = "sort_cogroup"
    NESTED_LOOP = "nested_loop"      # cross product
    SOLUTION_PROBE = "solution_probe"    # stateful index probe (Sec. 5.3)
    SOLUTION_GROUP = "solution_group"    # group workset, then probe index


@dataclass
class OperatorAnnotation:
    """All physical choices for one logical operator."""

    local: LocalStrategy = LocalStrategy.NONE
    ship: dict[int, ShipStrategy] = field(default_factory=dict)
    #: apply the combinable REDUCE UDF before shipping (Sec. 6.1 combiners)
    combiner: bool = False
    #: materialize this operator's output once and reuse across supersteps
    #: (constant-data-path cache, Section 4.3)
    cache_across_iterations: bool = False
    #: this input edge must fully materialize before consumption (dam)
    dams: set[int] = field(default_factory=set)


@dataclass(frozen=True)
class FusedChain:
    """A maximal run of record-wise operators executed as one driver.

    ``nodes`` is the chain's *spine* in producer→consumer order: each
    member is a MAP, FLAT_MAP, FILTER, or UNION node whose fused input
    is fed directly by the previous spine member instead of through the
    memo and a forward ship.  ``spine_inputs[i]`` names which input slot
    of ``nodes[i]`` the spine feeds (always ``0`` for unary operators;
    for a UNION it is the fused side — the other side, the *tap*, is
    shipped normally).  ``combine_node``, when set, is a combinable
    REDUCE whose per-record combine pass consumes the spine's output
    in-stream (Sec. 6.1 combiners); the reduce itself still runs as an
    ordinary operator on the combined partitions.

    The chain is keyed in :attr:`ExecutionPlan.chains` by its *tail* —
    ``combine_node`` when present, else ``nodes[-1]`` — because that is
    the node whose evaluation triggers the fused run.  Every other
    spine id appears in :attr:`ExecutionPlan.fused_ids`: those nodes
    never get memo entries, operator spans, or ship calls of their own.
    """

    nodes: tuple  # tuple[LogicalNode, ...], producer→consumer order
    spine_inputs: tuple[int, ...]  # per nodes[i>0]: input slot fed by spine
    combine_node: object | None = None  # combinable REDUCE tail, if fused

    def __post_init__(self):
        if len(self.spine_inputs) != len(self.nodes) - 1:
            raise ValueError(
                "spine_inputs must name one input slot per non-head spine "
                f"node: {len(self.nodes)} nodes, "
                f"{len(self.spine_inputs)} slots"
            )
        if len(self.nodes) < 2 and self.combine_node is None:
            raise ValueError("a fused chain needs at least two operators")

    @property
    def tail(self):
        """The node whose evaluation runs the whole chain."""
        return self.combine_node if self.combine_node is not None else self.nodes[-1]

    def describe(self) -> str:
        """Stable deterministic name: ``chain[map→filter→map]``."""
        parts = [node.contract.value for node in self.nodes]
        if self.combine_node is not None:
            parts.append("combine")
        return "chain[" + "→".join(parts) + "]"


@dataclass(frozen=True)
class AdaptiveSpec:
    """Adaptive eligibility of one match inside a delta iteration.

    The optimizer records, per eligible MATCH on the dynamic data path,
    everything the executor needs to re-cost the probe edge at superstep
    boundaries and switch its ship strategy mid-iteration (see
    :mod:`repro.optimizer.adaptive`).  ``baseline_kind`` is the
    statically chosen ship of the probe edge — the plan the switch must
    stay observationally identical to; ``switch_kind`` is the physical
    strategy a switch installs.  ``est_build_size`` is the optimizer's
    estimate of the constant build side, used by the crossover rule.

    ``force_at_superstep`` is a test hook: when set, the switch fires
    unconditionally at that superstep regardless of the cost model, so
    parity suites can exercise mid-iteration switches deterministically
    (including directions the cost model would never pick).
    """

    iteration_id: int
    node_id: int
    probe_index: int
    build_index: int
    baseline_kind: ShipKind
    switch_kind: ShipKind
    probe_key: tuple[int, ...]
    build_key: tuple[int, ...]
    est_build_size: float = 0.0
    force_at_superstep: int | None = None


@dataclass
class ExecutionPlan:
    """A logical plan plus every physical annotation needed to run it."""

    logical_plan: object  # LogicalPlan
    annotations: dict[int, OperatorAnnotation] = field(default_factory=dict)
    #: resolved execution mode per delta-iteration node id
    iteration_modes: dict[int, str] = field(default_factory=dict)
    #: optimizer cost estimate, for tests and plan dumps
    estimated_cost: float = 0.0
    #: fused operator chains keyed by tail node id (see :class:`FusedChain`)
    chains: dict[int, FusedChain] = field(default_factory=dict)
    #: ids of non-tail chain members — the executor never evaluates these
    #: directly (no memo entry, no operator span, no forward ship)
    fused_ids: frozenset[int] = frozenset()
    #: adaptive-switch eligibility per MATCH node id (see
    #: :class:`AdaptiveSpec`); populated by the optimizer whether or not
    #: ``RuntimeConfig.adaptive`` is on — the *plan* is identical in both
    #: modes, only the executor consults the flag
    adaptive: dict[int, AdaptiveSpec] = field(default_factory=dict)
    #: filters pushed below a match's input ship, keyed by MATCH node id
    #: (see :mod:`repro.optimizer.pushdown`): the executor applies the
    #: filter's predicate to that input side *before* shipping, so only
    #: surviving records pay network cost.  The filter node itself still
    #: runs post-join (filters are idempotent), which keeps its operator
    #: span and counters in place
    pushed_filters: dict[int, object] = field(default_factory=dict)

    def annotation(self, node) -> OperatorAnnotation:
        ann = self.annotations.get(node.id)
        if ann is None:
            ann = OperatorAnnotation()
            self.annotations[node.id] = ann
        return ann

    def ship_strategy(self, node, input_index) -> ShipStrategy:
        return self.annotation(node).ship.get(input_index, FORWARD)

    def describe(self) -> str:
        """A compact plan dump (one line per annotated operator)."""
        lines = []
        for node in self.logical_plan.nodes():
            ann = self.annotations.get(node.id)
            if ann is None:
                continue
            ships = ", ".join(
                f"in{idx}={strategy.describe()}" for idx, strategy in sorted(ann.ship.items())
            )
            extras = []
            if ann.combiner:
                extras.append("combiner")
            if ann.cache_across_iterations:
                extras.append("cached")
            if ann.dams:
                extras.append(f"dam{sorted(ann.dams)}")
            extra = (" [" + ", ".join(extras) + "]") if extras else ""
            lines.append(f"{node.name}: {ann.local.value} ({ships}){extra}")
        for tail_id in sorted(self.chains):
            chain = self.chains[tail_id]
            members = "→".join(node.name for node in chain.nodes)
            if chain.combine_node is not None:
                members += f"→{chain.combine_node.name}.combine"
            lines.append(f"{chain.describe()}: {members}")
        return "\n".join(lines)
