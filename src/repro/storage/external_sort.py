"""External sort: budget-bounded run generation plus k-way merge.

The sort-based drivers (`run_sort_aggregate`, `run_sort_merge_join`)
establish order with a *stable* in-memory sort on the key vector, so
equal keys keep arrival order.  The external equivalent sorts
``(key, seq, record)`` triples: ``seq`` is the arrival index, unique
within one sorter, so tuple comparison is exactly "key order, arrival
order within equal keys" and never compares two records.  That makes
the k-way :func:`heapq.merge` over sorted runs reproduce the in-memory
stable sort bit for bit, regardless of how many runs the budget forced.

Runs are written as frames into version-stamped spill files; the spill
conservation law (``resident + spilled == routed``) is audited when the
sorter seals.
"""

from __future__ import annotations

import heapq

from repro.storage.spill import estimate_record_bytes

_ENTRY_OVERHEAD = 64
#: never flush a run smaller than this, however tiny the budget —
#: degenerate one-record runs would make merge fan-in O(n)
_MIN_RUN = 16
_RUN_FRAME = 512


class ExternalSorter:
    """Accumulate entries, spill sorted runs, merge-iterate in order."""

    def __init__(self, manager, operator: str):
        self.manager = manager
        self.operator = operator
        self.entries: list = []  # (key, seq, record)
        self.runs: list = []
        self.routed = 0
        self.spilled = 0
        self._est = None

    def add(self, seq: int, key, record) -> None:
        if self._est is None and self.routed >= 15:
            self._settle_estimate()
        self.entries.append((key, seq, record))
        self.routed += 1
        if self._est is not None:
            self.manager.reserve(self._est)
            if (
                self.manager.over_budget()
                and len(self.entries) >= _MIN_RUN
            ):
                self._flush_run()

    def _settle_estimate(self) -> None:
        self._est = estimate_record_bytes(
            [record for (_k, _s, record) in self.entries]
        ) + _ENTRY_OVERHEAD
        self.manager.reserve(self._est * len(self.entries))

    def _flush_run(self) -> None:
        self.entries.sort()
        run = self.manager.new_spill_file(prefix=f"sort-{self.operator}")
        for start in range(0, len(self.entries), _RUN_FRAME):
            frame = self.entries[start:start + _RUN_FRAME]
            nbytes = run.append(frame)
            self.manager.note_spill(self.operator, len(frame), nbytes)
        run.finish()
        self.runs.append(run)
        self.spilled += len(self.entries)
        self.manager.release(self._est * len(self.entries))
        self.entries = []

    def merge(self):
        """Seal the sorter; yields entries in ``(key, seq)`` order."""
        if self._est is None:
            self._settle_estimate()
        checker = self.manager.checker
        if checker is not None:
            checker.check_spill(
                self.operator, self.routed, len(self.entries), self.spilled
            )
        self.entries.sort()
        streams = [_run_entries(run) for run in self.runs]
        streams.append(iter(self.entries))
        try:
            if len(streams) == 1:
                yield from streams[0]
            else:
                yield from heapq.merge(*streams)
        finally:
            self.close()

    def close(self) -> None:
        if self.entries:
            self.manager.release(self._est * len(self.entries))
            self.entries = []
        for run in self.runs:
            run.delete()
        self.runs = []


def _run_entries(run):
    for frame in run:
        yield from frame


# ----------------------------------------------------------------------
# driver algorithms


def spilled_sort_aggregate(manager, operator: str, entries, fn) -> list:
    """Combinable REDUCE over externally sorted runs; key-sorted output."""
    sorter = ExternalSorter(manager, operator)
    for seq, k, record in entries:
        sorter.add(seq, k, record)
    out: list = []
    current_key = object()
    acc = None
    for k, _seq, record in sorter.merge():
        if k != current_key:
            if acc is not None:
                out.append(acc)
            current_key, acc = k, record
        else:
            acc = fn(acc, record)
    if acc is not None:
        out.append(acc)
    return out


def spilled_sort_merge_join(manager, operator: str, left_entries,
                            right_entries, fn, flat) -> list:
    """Merge join over two externally sorted streams.

    Matches the in-memory driver: advance past unmatched keys, and for
    each shared key nest left group (outer) over right group (inner),
    both in stable (arrival) order.
    """
    from repro.runtime.drivers import _emit_join_result

    left_sorter = ExternalSorter(manager, f"{operator}.left")
    for seq, k, record in left_entries:
        left_sorter.add(seq, k, record)
    right_sorter = ExternalSorter(manager, f"{operator}.right")
    for seq, k, record in right_entries:
        right_sorter.add(seq, k, record)

    out: list = []
    left = left_sorter.merge()
    right = right_sorter.merge()
    lhead = next(left, None)
    rhead = next(right, None)
    while lhead is not None and rhead is not None:
        lk = lhead[0]
        rk = rhead[0]
        if lk < rk:
            lhead = next(left, None)
        elif rk < lk:
            rhead = next(right, None)
        else:
            lgroup = [lhead[2]]
            lhead = next(left, None)
            while lhead is not None and lhead[0] == lk:
                lgroup.append(lhead[2])
                lhead = next(left, None)
            rgroup = [rhead[2]]
            rhead = next(right, None)
            while rhead is not None and rhead[0] == rk:
                rgroup.append(rhead[2])
                rhead = next(right, None)
            for a in lgroup:
                for b in rgroup:
                    _emit_join_result(fn(a, b), flat, out)
    left.close()
    right.close()
    return out
