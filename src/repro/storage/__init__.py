"""Out-of-core execution substrate: spills, disk state, and parts.

``repro.storage`` is what lets operator state exceed memory without
changing a single result bit:

* :mod:`~repro.storage.session` — per-session spill directories with
  guaranteed cleanup (environment close, ``atexit`` sweep, and
  worker views nested under the owner so crashed workers can't leak),
* :mod:`~repro.storage.spill` — the :class:`SpillManager` budget
  accountant and version-stamped spill files,
* :mod:`~repro.storage.hashtable` — partition-and-spill hash
  algorithms (recursive repartitioning) behind the keyed drivers,
* :mod:`~repro.storage.external_sort` — run generation + k-way merge
  behind the sort-based drivers,
* :mod:`~repro.storage.diskdict` — the append-only-log dict backing
  the disk-resident solution set,
* :mod:`~repro.storage.partstore` — the manifest/parts/stats dataset
  store that also makes checkpoints incremental.

Activated per session by ``RuntimeConfig.memory_budget_bytes`` (or the
``REPRO_MEMORY_BUDGET`` environment variable); without a budget none
of this is on any hot path.
"""

from repro.storage.diskdict import DiskDict, DiskPartitionView
from repro.storage.format import StorageFormatError
from repro.storage.partstore import PartStore, content_hash
from repro.storage.session import StorageSession, sweep_owned_sessions
from repro.storage.spill import SpillFile, SpillManager

__all__ = [
    "DiskDict",
    "DiskPartitionView",
    "PartStore",
    "SpillFile",
    "SpillManager",
    "StorageFormatError",
    "StorageSession",
    "content_hash",
    "sweep_owned_sessions",
]
