"""Version-stamped on-disk framing shared by the storage subsystem.

Every file the spill substrate writes — spill runs, the disk-backed
solution-set logs, part-store part files — starts with a four-byte
magic plus a one-byte format version, and the part-store manifest JSON
carries ``format_version``.  Readers validate both before trusting a
single byte and raise :class:`StorageFormatError` with the offending
path, so a stale spill directory or a file produced by a different
build fails loudly instead of deserializing garbage.

Payload frames are length-prefixed pickles: ``<u32 little-endian
length><pickle blob>``.  The framing is deliberately dumb — spill files
are session-scoped scratch, not an interchange format — but the
version byte means we can change it without silent corruption.
"""

from __future__ import annotations

import pickle
import struct

#: spill run files (hash-partition overflow and sort runs)
SPILL_MAGIC = b"RSPL"
SPILL_VERSION = 1
#: append-only record logs backing the disk-backed solution set
LOG_MAGIC = b"RLOG"
LOG_VERSION = 1
#: part-store part files
PART_MAGIC = b"RPRT"
PART_VERSION = 1
#: part-store manifest JSON ``format_version``
MANIFEST_VERSION = 1

HEADER_SIZE = 5  # 4 magic bytes + 1 version byte
_LENGTH = struct.Struct("<I")


class StorageFormatError(RuntimeError):
    """An on-disk storage file failed magic/version validation."""


def write_header(fh, magic: bytes, version: int) -> int:
    """Stamp ``magic`` + ``version`` at the current position."""
    fh.write(magic + bytes([version]))
    return HEADER_SIZE


def check_header(header: bytes, magic: bytes, version: int,
                 path: str) -> None:
    """Validate a read header; raise :class:`StorageFormatError` if off."""
    if len(header) != HEADER_SIZE or header[:4] != magic:
        raise StorageFormatError(
            f"{path}: bad magic {header[:4]!r}, expected {magic!r} — "
            "not a repro storage file of this kind"
        )
    found = header[4]
    if found != version:
        raise StorageFormatError(
            f"{path}: on-disk format version {found} does not match "
            f"this build's version {version}; the file was written by "
            "an incompatible build and cannot be read"
        )


def read_header(fh, magic: bytes, version: int, path: str) -> None:
    check_header(fh.read(HEADER_SIZE), magic, version, path)


def write_frame(fh, payload) -> int:
    """Append one length-prefixed pickle frame; returns bytes written."""
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    fh.write(_LENGTH.pack(len(blob)))
    fh.write(blob)
    return _LENGTH.size + len(blob)


def read_frame(fh, path: str):
    """Read the frame at the current position; ``None`` at clean EOF."""
    prefix = fh.read(_LENGTH.size)
    if not prefix:
        return None
    if len(prefix) != _LENGTH.size:
        raise StorageFormatError(
            f"{path}: truncated frame length prefix"
        )
    (length,) = _LENGTH.unpack(prefix)
    blob = fh.read(length)
    if len(blob) != length:
        raise StorageFormatError(
            f"{path}: truncated frame body ({len(blob)}/{length} bytes)"
        )
    return pickle.loads(blob)
