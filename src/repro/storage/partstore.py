"""A datamgr-style part store: manifest + per-part files + stats rows.

Datasets (and checkpoint state) persist as *parts*: one version-stamped
file of pickled records per partition, plus a stats row in a JSON
manifest — cardinality, key range, byte size, and a content hash.  The
content hash is an order-sensitive fold of
:func:`repro.common.hashing.stable_hash` over the records (pinned by a
regression test), which buys two things:

* **dedup** — a part whose content hash and cardinality match an
  existing part reuses its file; consecutive checkpoints of a delta
  iteration only write the partitions that actually changed, making
  checkpoints incremental,
* **integrity** — loading a part re-folds the hash and fails loudly on
  mismatch, so a torn write can't resurrect as silent wrong answers.

The stats rows are the substrate ROADMAP item 3's planner pruning
needs (per-part cardinality and key ranges).
"""

from __future__ import annotations

import json
import os
import pickle

from repro.common.hashing import stable_hash
from repro.storage.format import (
    MANIFEST_VERSION,
    PART_MAGIC,
    PART_VERSION,
    StorageFormatError,
    read_header,
    write_header,
)

_MASK64 = 0xFFFFFFFFFFFFFFFF


def content_hash(records) -> int:
    """Order-sensitive 64-bit fold of ``stable_hash`` over ``records``.

    The same tuple-folding recurrence ``stable_hash`` itself uses,
    widened to 64 bits and seeded with the record count, so that part
    hashes are a stable function of (count, each record, order) across
    processes and sessions.  Pinned by a regression test — changing
    this silently would break part dedup across builds.
    """
    acc = 0x345678 ^ len(records)
    for record in records:
        acc = ((acc * 1000003) ^ stable_hash(record)) & _MASK64
    return acc


def _key_range(keys):
    """(min, max) when keys exist and are mutually comparable."""
    if not keys:
        return None
    try:
        return [min(keys), max(keys)]
    except TypeError:
        return None


class PartStore:
    """Immutable parts + a JSON manifest of stats rows and datasets."""

    MANIFEST = "manifest.json"

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.parts_written = 0
        self.parts_reused = 0
        self._manifest_path = os.path.join(root, self.MANIFEST)
        if os.path.exists(self._manifest_path):
            with open(self._manifest_path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
            found = manifest.get("format_version")
            if found != MANIFEST_VERSION:
                raise StorageFormatError(
                    f"{self._manifest_path}: manifest format_version "
                    f"{found!r} does not match this build's version "
                    f"{MANIFEST_VERSION}; the store was written by an "
                    "incompatible build"
                )
            self.manifest = manifest
        else:
            self.manifest = {
                "format_version": MANIFEST_VERSION,
                "parts": {},
                "datasets": {},
            }

    # ------------------------------------------------------------------
    # parts

    def put_part(self, records, keys=None) -> str:
        """Store one partition's records; returns its part id.

        Identical content (hash + cardinality) reuses the existing
        file — the caller can't tell, except through ``parts_reused``.
        """
        records = list(records)
        digest = content_hash(records)
        part_id = f"part-{digest:016x}-{len(records)}"
        if part_id in self.manifest["parts"]:
            self.parts_reused += 1
            return part_id
        path = os.path.join(self.root, f"{part_id}.bin")
        with open(path, "wb") as fh:
            write_header(fh, PART_MAGIC, PART_VERSION)
            pickle.dump(records, fh, protocol=pickle.HIGHEST_PROTOCOL)
        self.manifest["parts"][part_id] = {
            "cardinality": len(records),
            "content_hash": digest,
            "key_range": _key_range(keys),
            "bytes": os.path.getsize(path),
        }
        self.parts_written += 1
        self._save_manifest()
        return part_id

    def load_part(self, part_id: str) -> list:
        """Load a part, re-validating header, hash, and cardinality."""
        stats = self.manifest["parts"].get(part_id)
        if stats is None:
            raise KeyError(f"unknown part {part_id!r}")
        path = os.path.join(self.root, f"{part_id}.bin")
        with open(path, "rb") as fh:
            read_header(fh, PART_MAGIC, PART_VERSION, path)
            records = pickle.load(fh)
        if (
            len(records) != stats["cardinality"]
            or content_hash(records) != stats["content_hash"]
        ):
            raise StorageFormatError(
                f"{path}: content does not match its manifest stats row "
                "(torn write or corruption)"
            )
        return records

    def part_stats(self, part_id: str) -> dict:
        return self.manifest["parts"][part_id]

    # ------------------------------------------------------------------
    # datasets (named lists of parts, one per partition)

    def register(self, name: str, partitions, keys_per_partition=None
                 ) -> list[str]:
        """Persist ``partitions`` (lists of records) as dataset ``name``."""
        part_ids = []
        for i, records in enumerate(partitions):
            keys = None
            if keys_per_partition is not None:
                keys = keys_per_partition[i]
            part_ids.append(self.put_part(records, keys=keys))
        self.manifest["datasets"][name] = {"parts": part_ids}
        self._save_manifest()
        return part_ids

    def dataset_names(self):
        return sorted(self.manifest["datasets"])

    def dataset_part_ids(self, name: str) -> list[str]:
        try:
            return list(self.manifest["datasets"][name]["parts"])
        except KeyError:
            raise KeyError(
                f"unknown dataset {name!r}; registered: "
                f"{', '.join(self.dataset_names()) or '(none)'}"
            ) from None

    def load_dataset(self, name: str) -> list[list]:
        return [self.load_part(pid) for pid in self.dataset_part_ids(name)]

    def dataset_stats(self, name: str) -> list[dict]:
        """The stats rows (pruning substrate) for a dataset's parts."""
        return [
            dict(self.manifest["parts"][pid])
            for pid in self.dataset_part_ids(name)
        ]

    def prune_parts(self, part_ids, key_range) -> list[str]:
        """Parts that may hold keys inside ``key_range=(lo, hi)``.

        Manifest-only: no part file is opened.  A part survives pruning
        unless its stats row *proves* it irrelevant — its recorded key
        range lies entirely outside the predicate, or it is empty.
        Parts without a recorded key range (unkeyed registration, or
        keys that were not mutually comparable) are conservatively
        kept.  Either predicate bound may be ``None``, meaning
        unbounded on that side; ``(None, None)`` only prunes empty
        parts.
        """
        lo, hi = key_range
        kept = []
        for pid in part_ids:
            stats = self.manifest["parts"][pid]
            if stats["cardinality"] == 0:
                continue  # provably contributes nothing
            recorded = stats.get("key_range")
            if recorded is None:
                kept.append(pid)  # no stats row evidence: must keep
                continue
            part_lo, part_hi = recorded
            if lo is not None and part_hi < lo:
                continue
            if hi is not None and part_lo > hi:
                continue
            kept.append(pid)
        return kept

    # ------------------------------------------------------------------

    def _save_manifest(self) -> None:
        # atomic-enough on POSIX: write sidecar, rename over
        tmp = self._manifest_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.manifest, fh, indent=1, sort_keys=True)
        os.replace(tmp, self._manifest_path)
