"""An insertion-ordered dict whose values live in an append-only log.

The disk-backed :class:`~repro.iterations.solution_set.SolutionSetIndex`
swaps its per-partition ``dict`` for a :class:`DiskDict`: keys (with
the offset of their latest value frame) stay in a small in-memory
index, records go to a version-stamped log file.  Replacement rewrites
the offset in place, so iteration order is exactly ``dict`` semantics —
first-insertion order, stable across updates — which is what keeps
out-of-core delta iterations bitwise identical to in-memory runs.

The log is write-mostly: ``∪̇``-style replacement just appends the new
record and orphans the old frame (space is reclaimed when the session
directory is removed; spill state is per-run scratch, not a database).
"""

from __future__ import annotations

from repro.storage.format import (
    LOG_MAGIC,
    LOG_VERSION,
    read_frame,
    read_header,
    write_frame,
    write_header,
)

_MISSING = object()


class DiskDict:
    """Mapping with dict iteration semantics and on-disk values."""

    def __init__(self, path: str):
        self.path = path
        self._index: dict = {}  # key -> offset of latest value frame
        self._fh = open(path, "w+b")
        self._tail = write_header(self._fh, LOG_MAGIC, LOG_VERSION)
        self._dirty = False
        self.bytes_written = self._tail

    # ------------------------------------------------------------------
    # mapping protocol (the subset SolutionSetIndex and the executor use)

    def __setitem__(self, key, record) -> None:
        self._fh.seek(self._tail)
        nbytes = write_frame(self._fh, record)
        self._index[key] = self._tail
        self._tail += nbytes
        self.bytes_written += nbytes
        self._dirty = True

    def _read(self, offset):
        if self._dirty:
            self._fh.flush()
            self._dirty = False
        self._fh.seek(offset)
        return read_frame(self._fh, self.path)

    def __getitem__(self, key):
        offset = self._index.get(key, _MISSING)
        if offset is _MISSING:
            raise KeyError(key)
        return self._read(offset)

    def get(self, key, default=None):
        offset = self._index.get(key, _MISSING)
        if offset is _MISSING:
            return default
        return self._read(offset)

    def __contains__(self, key) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    def __iter__(self):
        return iter(self._index)

    def keys(self):
        return self._index.keys()

    def values(self):
        for offset in list(self._index.values()):
            yield self._read(offset)

    def items(self):
        for key, offset in list(self._index.items()):
            yield key, self._read(offset)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # ------------------------------------------------------------------
    # pickling (checkpoints without a part store pickle raw partitions):
    # a DiskDict crosses as its items and lands in a fresh log under a
    # process-wide fallback session, preserving insertion order

    def __reduce__(self):
        return (_restore, (list(self.items()),))


class DiskPartitionView:
    """Read-only sequence over one DiskDict's values, in dict order.

    Stands in for the materialized ``list(part.values())`` a delta
    iteration returns: forward ships pass it through untouched (see
    ``channels._ship_forward``), record-wise drivers iterate it
    streaming, and anything that really needs a list (pickling, ship
    to another partition) gets one via ``list(view)``.
    """

    is_lazy_partition = True

    def __init__(self, disk_dict: DiskDict):
        self._dd = disk_dict

    def __len__(self) -> int:
        return len(self._dd)

    def __iter__(self):
        return self._dd.values()

    def __getitem__(self, i):
        if isinstance(i, slice):
            return list(self)[i]
        offsets = list(self._dd._index.values())
        return self._dd._read(offsets[i])

    def __reduce__(self):
        return (list, (list(self),))


def _restore(items) -> DiskDict:
    session = _fallback_session()
    dd = DiskDict(session.new_file(prefix="restored-log"))
    for key, record in items:
        dd[key] = record
    return dd


_FALLBACK = None


def _fallback_session():
    """A lazily created, atexit-swept session for restored DiskDicts."""
    global _FALLBACK
    from repro.storage.session import StorageSession
    if _FALLBACK is None or _FALLBACK.closed:
        _FALLBACK = StorageSession()
    return _FALLBACK
