"""The spill manager: one memory budget, many spillable consumers.

A :class:`SpillManager` is attached to an executor when
``RuntimeConfig.memory_budget_bytes`` is set.  It does three things:

* **accounting** — consumers ``reserve``/``release`` estimated bytes
  for the records they hold resident; the estimate is a sampled
  ``sys.getsizeof`` walk over a handful of records (estimating, not
  serializing — the budget is a dam height, not an audit),
* **admission** — ``over_budget()`` is the single question every
  spillable structure asks before growing,
* **bookkeeping** — every frame written to disk is counted on the
  ``records_spilled`` / ``bytes_spilled`` metrics (physical counters:
  excluded from cross-backend logical comparisons) and marked as an
  instant on the tracer's open span.

Spill files are version-stamped (:mod:`repro.storage.format`) streams
of length-prefixed frames, allocated inside the manager's
:class:`~repro.storage.session.StorageSession` so cleanup is the
session's problem, not each consumer's.  All-fixed-width entry lists
spill as raw column frames (:mod:`repro.common.columns` header plus
buffers — no per-record pickling); everything else spills as a
pickled entry list.  Readers materialize rows either way.
"""

from __future__ import annotations

import sys

from repro.common import columns as columns_mod
from repro.common.batch import RecordBatch
from repro.storage.format import (
    SPILL_MAGIC,
    SPILL_VERSION,
    read_frame,
    read_header,
    write_frame,
    write_header,
)

_SIZE_SAMPLE = 16


def estimate_record_bytes(records, sample: int = _SIZE_SAMPLE) -> int:
    """Mean estimated bytes per record over a small prefix sample.

    One level deep: the tuple plus its fields.  Nested containers are
    charged their shallow size only — cheap and stable is worth more
    here than exact, since the estimate only decides *when* to spill,
    never *what the results are*.  A :class:`RecordBatch` whose column
    view is all fixed-width skips the sampling walk entirely — its
    payload size is exact arithmetic over the column buffers.
    """
    if isinstance(records, RecordBatch):
        exact = records.nbytes()
        if exact is not None and len(records):
            return max(1, exact // len(records))
        records = records.records
    if not records:
        return 0
    total = 0
    count = 0
    for record in records[:sample]:
        total += sys.getsizeof(record)
        if isinstance(record, tuple):
            for field in record:
                total += sys.getsizeof(field)
        count += 1
    return max(1, total // count)


class SpillFile:
    """One write-then-read scratch file of pickle frames."""

    def __init__(self, path: str):
        self.path = path
        self.frames = 0
        self.records = 0
        self.bytes_written = 0
        self._fh = open(path, "wb")
        write_header(self._fh, SPILL_MAGIC, SPILL_VERSION)

    def append(self, entries: list) -> int:
        """Write one frame holding ``entries``; returns frame bytes.

        An all-fixed-width entry list leaves as a raw column frame
        (header + buffers — no per-record pickling); anything else —
        nested tuples, mixed types, irregular arity — writes the
        classic pickled entry list.  Readers see row lists either way.
        """
        payload = entries
        if isinstance(entries, list) and entries:
            transposed = columns_mod.columnarize(entries)
            if transposed is not None:
                _arity, cols = transposed
                if columns_mod.frame_nbytes(cols, len(entries)) is not None:
                    header, buffers = columns_mod.encode_frame(
                        cols, len(entries), None
                    )
                    payload = (
                        "cols", bytes(header),
                        [bytes(b) for b in buffers],
                    )
        nbytes = write_frame(self._fh, payload)
        self.frames += 1
        self.records += len(entries)
        self.bytes_written += nbytes
        return nbytes

    def finish(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __iter__(self):
        """Yield frames (entry lists) in write order."""
        self.finish()
        with open(self.path, "rb") as fh:
            read_header(fh, SPILL_MAGIC, SPILL_VERSION, self.path)
            while True:
                frame = read_frame(fh, self.path)
                if frame is None:
                    return
                if (
                    isinstance(frame, tuple)
                    and len(frame) == 3
                    and frame[0] == "cols"
                ):
                    length, cols, _key_fields = columns_mod.decode_frame(
                        frame[1], frame[2]
                    )
                    yield columns_mod.materialize_rows(cols, length)
                else:
                    yield frame

    def read_entries(self) -> list:
        """All entries, flattened, in write order."""
        out: list = []
        for frame in self:
            out.extend(frame)
        return out

    def delete(self) -> None:
        import os
        self.finish()
        try:
            os.unlink(self.path)
        except OSError:
            pass


class SpillManager:
    """Process-wide budget accounting plus spill-file allocation."""

    def __init__(self, budget_bytes: int, session, metrics=None):
        if budget_bytes < 1:
            raise ValueError(
                f"budget_bytes must be >= 1, got {budget_bytes}"
            )
        self.budget_bytes = budget_bytes
        self.session = session
        self.metrics = metrics
        self.tracked_bytes = 0
        self.peak_tracked_bytes = 0
        self.spill_events = 0
        self.spill_files = 0
        self.records_spilled = 0
        self.bytes_spilled = 0

    @property
    def checker(self):
        """The metrics collector's invariant checker, if attached."""
        if self.metrics is None:
            return None
        return self.metrics.invariants

    @property
    def telemetry(self):
        """The collector's live metric registry, if attached."""
        if self.metrics is None:
            return None
        return self.metrics.telemetry

    def telemetry_probe(self) -> dict:
        """Gauge samples for the registry's superstep-boundary poll."""
        return {
            "spill.resident_bytes": self.tracked_bytes,
            "spill.budget_utilization":
                self.tracked_bytes / self.budget_bytes,
            "spill.bytes_spilled": self.bytes_spilled,
        }

    # ------------------------------------------------------------------
    # accounting

    def reserve(self, nbytes: int) -> None:
        self.tracked_bytes += nbytes
        if self.tracked_bytes > self.peak_tracked_bytes:
            self.peak_tracked_bytes = self.tracked_bytes

    def release(self, nbytes: int) -> None:
        self.tracked_bytes -= nbytes
        if self.tracked_bytes < 0:  # defensive: estimates must pair up
            self.tracked_bytes = 0

    def over_budget(self) -> bool:
        return self.tracked_bytes > self.budget_bytes

    # ------------------------------------------------------------------
    # spilling

    def new_spill_file(self, prefix: str = "spill") -> SpillFile:
        self.spill_files += 1
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.counter("spill.files").inc()
        return SpillFile(self.session.new_file(prefix))

    def note_spill(self, operator: str, records: int, nbytes: int) -> None:
        """Count one frame written to disk on behalf of ``operator``."""
        self.spill_events += 1
        self.records_spilled += records
        self.bytes_spilled += nbytes
        if self.metrics is not None:
            self.metrics.add_spilled(records, nbytes)
            tracer = self.metrics.tracer
            if tracer is not None:
                tracer.instant(
                    f"spill:{operator}", category="storage",
                    records=records, bytes=nbytes,
                )
            telemetry = self.metrics.telemetry
            if telemetry is not None:
                telemetry.counter("spill.records_spilled").inc(records)
                telemetry.counter("spill.bytes_spilled").inc(nbytes)
                telemetry.gauge("spill.resident_bytes").set(
                    self.tracked_bytes
                )
                telemetry.gauge("spill.budget_utilization").set(
                    self.tracked_bytes / self.budget_bytes
                )
