"""Partition-and-spill hash algorithms behind the keyed drivers.

The Grace-style scheme: a *partition pass* routes a stream of
``(seq, key, record)`` entries into ``FANOUT`` buckets by a slice of
``stable_hash(key)``; whenever the :class:`~repro.storage.spill.SpillManager`
reports the budget exceeded, the largest in-memory bucket is flushed to
a version-stamped spill file.  A bucket that outgrows the budget on its
own is *recursively repartitioned* with the next hash-bit slice, so a
key group only has to fit in memory at the leaves (identical keys can
never split — a pathological single-key bucket stops recursing and is
processed in memory, exactly what an in-memory engine would be forced
to do).

**Bitwise parity.**  Every entry carries its arrival sequence number,
and every bucket preserves arrival order (spilled frames first, then
the in-memory tail — a bucket spills its *oldest* entries).  Each
algorithm reassembles exactly the order the in-memory driver produces:

* hash aggregate / reduce-group — first-occurrence key order, via each
  key's minimal ``seq``;
* hash join — probe arrival order, via per-probe ``seq`` tags; per-key
  build lists restricted to a leaf are the global arrival order
  restricted to that leaf, so match order within one probe agrees too;
* cogroup — the in-memory driver iterates ``left.keys() & right.keys()``
  (or ``|``); rebuilding both key dicts in global first-occurrence
  order and applying the same operator reproduces CPython's set
  iteration order element for element.

After every partition pass the spill conservation law is audited:
``resident + spilled == routed`` (:meth:`InvariantChecker.check_spill`).
"""

from __future__ import annotations

from collections import defaultdict

from repro.common.hashing import stable_hash
from repro.storage.spill import estimate_record_bytes

FANOUT = 8
#: deepest repartition level; 3 bits per level over the 31-bit hash
MAX_LEVEL = 8
#: a bucket smaller than this is always loaded, never repartitioned
_RECURSE_MIN_RECORDS = 9
_ENTRY_OVERHEAD = 64  # the (seq, key, record) wrapper tuple itself


def _bucket_of(key, level: int) -> int:
    return (stable_hash(key) >> (3 * level)) % FANOUT


class Partition:
    """One bucket after a pass: spilled frames plus an in-memory tail."""

    __slots__ = ("file", "tail", "records", "est_entry_bytes")

    def __init__(self):
        self.file = None
        self.tail: list = []
        self.records = 0
        self.est_entry_bytes = _ENTRY_OVERHEAD

    def stream(self):
        """Entries in arrival order (oldest were spilled first)."""
        if self.file is not None:
            for frame in self.file:
                yield from frame
        yield from self.tail

    def est_bytes(self) -> int:
        return self.records * self.est_entry_bytes

    def release(self, manager) -> None:
        """Drop the tail reservation and delete the spill file."""
        if self.tail:
            manager.release(len(self.tail) * self.est_entry_bytes)
            self.tail = []
        if self.file is not None:
            self.file.delete()
            self.file = None


def partition_pass(manager, operator: str, entries, level: int
                   ) -> list[Partition]:
    """Route ``entries`` into ``FANOUT`` buckets, spilling over budget.

    ``entries`` is any iterable of ``(seq, key, record)``; it is
    consumed streaming, so a pass over a spill file never materializes
    the file.  Audits ``resident + spilled == routed`` on the way out.
    """
    parts = [Partition() for _ in range(FANOUT)]
    routed = 0
    spilled = 0
    est = None
    iterator = iter(entries)
    sample: list = []
    for entry in iterator:
        sample.append(entry)
        if len(sample) >= 16:
            break
    if sample:
        est = estimate_record_bytes(
            [record for (_s, _k, record) in sample]
        ) + _ENTRY_OVERHEAD
        for part in parts:
            part.est_entry_bytes = est

    def feed(entry):
        nonlocal routed, spilled
        routed += 1
        part = parts[_bucket_of(entry[1], level)]
        part.tail.append(entry)
        part.records += 1
        manager.reserve(est)
        if manager.over_budget():
            victim = max(parts, key=lambda p: len(p.tail))
            if victim.tail:
                spilled += _flush(manager, operator, victim)

    for entry in sample:
        feed(entry)
    for entry in iterator:
        feed(entry)

    checker = manager.checker
    if checker is not None:
        resident = sum(len(p.tail) for p in parts)
        checker.check_spill(operator, routed, resident, spilled)
    return parts


def _flush(manager, operator: str, part: Partition) -> int:
    """Spill a bucket's in-memory tail as one frame; returns its size."""
    if part.file is None:
        part.file = manager.new_spill_file(prefix=f"ht-{operator}")
    count = len(part.tail)
    nbytes = part.file.append(part.tail)
    manager.note_spill(operator, count, nbytes)
    manager.release(count * part.est_entry_bytes)
    part.tail = []
    return count


def iter_leaves(manager, operator: str, parts: list[Partition],
                level: int, parent_records: int):
    """Yield each bucket's entry list, recursively repartitioning.

    A bucket is repartitioned when its estimated bytes exceed the
    budget, recursion depth remains, and the parent pass actually split
    the data (a single-key bucket absorbs everything at every level —
    recursing on it would never terminate usefully).
    """
    for part in parts:
        if (
            part.est_bytes() > manager.budget_bytes
            and part.records >= _RECURSE_MIN_RECORDS
            and part.records < parent_records
            and level + 1 <= MAX_LEVEL
        ):
            sub = partition_pass(manager, operator, part.stream(), level + 1)
            part.release(manager)
            yield from iter_leaves(
                manager, operator, sub, level + 1, part.records
            )
        else:
            entries = list(part.stream())
            part.release(manager)
            yield entries


# ----------------------------------------------------------------------
# driver algorithms


def spilled_hash_aggregate(manager, operator: str, entries, fn) -> list:
    """Combinable REDUCE; output in global first-occurrence key order."""
    parts = partition_pass(manager, operator, entries, 0)
    routed = sum(p.records for p in parts)
    tagged: list = []  # (first seq of key, accumulator)
    for leaf in iter_leaves(manager, operator, parts, 0, routed):
        table: dict = {}
        get = table.get
        for seq, k, record in leaf:
            held = get(k)
            if held is None:
                table[k] = [seq, record]
            else:
                held[1] = fn(held[1], record)
        tagged.extend(table.values())
    tagged.sort(key=lambda pair: pair[0])
    return [acc for _seq, acc in tagged]


def spilled_reduce_group(manager, operator: str, entries, fn) -> list:
    """REDUCE_GROUP; groups emitted in first-occurrence key order."""
    parts = partition_pass(manager, operator, entries, 0)
    routed = sum(p.records for p in parts)
    tagged: list = []  # (first seq of key, key, group records)
    for leaf in iter_leaves(manager, operator, parts, 0, routed):
        groups: dict = {}
        for seq, k, record in leaf:
            held = groups.get(k)
            if held is None:
                groups[k] = [seq, [record]]
            else:
                held[1].append(record)
        tagged.extend(
            (first, k, group) for k, (first, group) in groups.items()
        )
    tagged.sort(key=lambda item: item[0])
    out: list = []
    for _seq, k, group in tagged:
        out.extend(fn(k, group))
    return out


def spilled_hash_join(manager, operator: str, build_entries, probe_entries,
                      emit) -> list:
    """Hash join; output in probe arrival order.

    ``emit(build_record, probe_record, out)`` appends one probe-build
    pairing's results — the caller bakes in build side and flattening.
    """
    build_parts = partition_pass(
        manager, f"{operator}.build", build_entries, 0
    )
    probe_parts = partition_pass(
        manager, f"{operator}.probe", probe_entries, 0
    )
    tagged: list = []  # (probe seq, [results])
    build_routed = sum(p.records for p in build_parts)
    _join_pairs(manager, operator, build_parts, probe_parts, 0,
                build_routed, emit, tagged)
    tagged.sort(key=lambda pair: pair[0])
    out: list = []
    for _seq, results in tagged:
        out.extend(results)
    return out


def _join_pairs(manager, operator, build_parts, probe_parts, level,
                parent_build_records, emit, tagged):
    for build_part, probe_part in zip(build_parts, probe_parts):
        if (
            build_part.est_bytes() > manager.budget_bytes
            and build_part.records >= _RECURSE_MIN_RECORDS
            and build_part.records < parent_build_records
            and level + 1 <= MAX_LEVEL
        ):
            sub_build = partition_pass(
                manager, f"{operator}.build", build_part.stream(), level + 1
            )
            sub_probe = partition_pass(
                manager, f"{operator}.probe", probe_part.stream(), level + 1
            )
            records = build_part.records
            build_part.release(manager)
            probe_part.release(manager)
            _join_pairs(manager, operator, sub_build, sub_probe,
                        level + 1, records, emit, tagged)
            continue
        table = defaultdict(list)
        for _seq, k, record in build_part.stream():
            table[k].append(record)
        build_part.release(manager)
        lookup = table.get
        for seq, k, probe in probe_part.stream():
            matches = lookup(k)
            if matches is None:
                continue
            results: list = []
            for build in matches:
                emit(build, probe, results)
            tagged.append((seq, results))
        probe_part.release(manager)


def spilled_cogroup(manager, operator: str, left_entries, right_entries,
                    fn, inner: bool) -> list:
    """COGROUP; reproduces the in-memory driver's key-set iteration.

    Each leaf pair holds every record of its keys, so group contents
    and per-key outputs are computed leaf-locally; only the two key
    dictionaries are rebuilt globally (in first-occurrence order) to
    replay ``keys() & keys()`` / ``keys() | keys()`` exactly.
    """
    left_parts = partition_pass(
        manager, f"{operator}.left", left_entries, 0
    )
    right_parts = partition_pass(
        manager, f"{operator}.right", right_entries, 0
    )
    left_seen: list = []   # (first seq, key) per distinct left key
    right_seen: list = []
    outputs: dict = {}     # key -> list(fn(...)) results
    routed = sum(p.records for p in left_parts) + sum(
        p.records for p in right_parts
    )
    _cogroup_pairs(manager, operator, left_parts, right_parts, 0, routed,
                   fn, inner, left_seen, right_seen, outputs)
    left_seen.sort(key=lambda pair: pair[0])
    right_seen.sort(key=lambda pair: pair[0])
    # the in-memory driver unions two *defaultdict* key views, and
    # CPython presizes the union set differently for dict-subclass
    # views than for exact-dict views — which changes set iteration
    # order; the rebuilt dicts must be the same type to replay it
    left_keys: defaultdict = defaultdict(list)
    for _seq, k in left_seen:
        left_keys[k] = None
    right_keys: defaultdict = defaultdict(list)
    for _seq, k in right_seen:
        right_keys[k] = None
    if inner:
        keys = left_keys.keys() & right_keys.keys()
    else:
        keys = left_keys.keys() | right_keys.keys()
    out: list = []
    for k in keys:
        out.extend(outputs[k])
    return out


def _cogroup_pairs(manager, operator, left_parts, right_parts, level,
                   parent_records, fn, inner, left_seen, right_seen,
                   outputs):
    for left_part, right_part in zip(left_parts, right_parts):
        combined = left_part.est_bytes() + right_part.est_bytes()
        records = left_part.records + right_part.records
        if (
            combined > manager.budget_bytes
            and records >= _RECURSE_MIN_RECORDS
            and records < parent_records
            and level + 1 <= MAX_LEVEL
        ):
            sub_left = partition_pass(
                manager, f"{operator}.left", left_part.stream(), level + 1
            )
            sub_right = partition_pass(
                manager, f"{operator}.right", right_part.stream(), level + 1
            )
            left_part.release(manager)
            right_part.release(manager)
            _cogroup_pairs(manager, operator, sub_left, sub_right,
                           level + 1, records, fn, inner, left_seen,
                           right_seen, outputs)
            continue
        left_groups: dict = {}
        for seq, k, record in left_part.stream():
            held = left_groups.get(k)
            if held is None:
                left_groups[k] = [seq, [record]]
                left_seen.append((seq, k))
            else:
                held[1].append(record)
        left_part.release(manager)
        right_groups: dict = {}
        for seq, k, record in right_part.stream():
            held = right_groups.get(k)
            if held is None:
                right_groups[k] = [seq, [record]]
                right_seen.append((seq, k))
            else:
                held[1].append(record)
        right_part.release(manager)
        if inner:
            eligible = [k for k in left_groups if k in right_groups]
        else:
            eligible = list(left_groups)
            eligible.extend(k for k in right_groups if k not in left_groups)
        for k in eligible:
            lgroup = left_groups[k][1] if k in left_groups else []
            rgroup = right_groups[k][1] if k in right_groups else []
            outputs[k] = list(fn(k, lgroup, rgroup))
