"""Spill-directory lifecycle: per-session scratch space that cannot leak.

A :class:`StorageSession` owns one temporary directory under the
platform tempdir.  Everything the out-of-core substrate writes — spill
runs, disk-backed solution-set logs, part-store files — lives inside
it, so cleanup is a single tree removal with three independent
triggers:

* ``ExecutionEnvironment.close()`` (or the session's own ``close``),
* an ``atexit`` sweep over every session this process still owns,
* the owning process's next sweep for directories workers left behind —
  worker-side views nest *inside* the parent directory, so a worker
  killed mid-spill can only ever strand files the parent will remove.

Ownership is pinned to the creating pid: a forked worker inheriting the
session object (multiprocess backend) or receiving it by value (pool
jobs pickle sessions as non-owning views) never removes the parent's
directory, no matter how it exits.
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile

_OWNED: dict[int, "StorageSession"] = {}
_next_id = 0


def _register(session: "StorageSession") -> int:
    global _next_id
    _next_id += 1
    _OWNED[_next_id] = session
    return _next_id


def sweep_owned_sessions() -> None:
    """Close every session this process still owns (atexit hook)."""
    for session in list(_OWNED.values()):
        try:
            session.close()
        except OSError:  # pragma: no cover - best-effort teardown
            pass


atexit.register(sweep_owned_sessions)


class StorageSession:
    """One spill directory plus a unique-name allocator over it."""

    def __init__(self, path: str | None = None, owner: bool = True):
        if path is None:
            path = tempfile.mkdtemp(prefix="repro-spill-")
        else:
            os.makedirs(path, exist_ok=True)
        self.path = path
        self.owner = owner
        self.closed = False
        self._owner_pid = os.getpid()
        self._seq = 0
        self._registry_id = _register(self) if owner else None

    # ------------------------------------------------------------------

    def new_file(self, prefix: str = "spill", suffix: str = ".bin") -> str:
        """Reserve a fresh unique path inside the session directory."""
        if self.closed:
            raise RuntimeError("storage session is closed")
        self._seq += 1
        return os.path.join(self.path, f"{prefix}-{self._seq:06d}{suffix}")

    def subdir(self, name: str) -> str:
        path = os.path.join(self.path, name)
        os.makedirs(path, exist_ok=True)
        return path

    def worker_view(self, rank: int) -> "StorageSession":
        """A non-owning view rooted *inside* this session's directory.

        Each SPMD worker spills under ``worker-<rank>-<pid>/``; nesting
        means the parent's close/atexit sweep removes a crashed
        worker's files even though the worker never ran its own
        cleanup.
        """
        return StorageSession(
            path=os.path.join(self.path, f"worker-{rank}-{os.getpid()}"),
            owner=False,
        )

    def disk_bytes(self) -> int:
        """Total bytes currently on disk under the session directory."""
        total = 0
        for dirpath, _dirnames, filenames in os.walk(self.path):
            for name in filenames:
                try:
                    total += os.path.getsize(os.path.join(dirpath, name))
                except OSError:
                    pass
        return total

    def close(self) -> None:
        """Remove the directory tree (owners only; idempotent)."""
        if self.closed:
            return
        self.closed = True
        if self._registry_id is not None:
            _OWNED.pop(self._registry_id, None)
        if self.owner and os.getpid() == self._owner_pid:
            shutil.rmtree(self.path, ignore_errors=True)

    # ------------------------------------------------------------------
    # a session crosses process boundaries as a path-only view: the
    # receiver allocates files inside the same tree but never deletes it

    def __getstate__(self):
        return {"path": self.path}

    def __setstate__(self, state):
        self.path = state["path"]
        self.owner = False
        self.closed = False
        self._owner_pid = os.getpid()
        self._seq = 0
        self._registry_id = None
        os.makedirs(self.path, exist_ok=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __repr__(self):  # pragma: no cover - debugging aid
        role = "owner" if self.owner else "view"
        return f"StorageSession({self.path!r}, {role})"
