"""PACT second-order contracts and their structural properties.

Contracts describe how a user-defined first-order function may be invoked
on partitions of its input (Section 3 of the paper): record-at-a-time
contracts (Map, Filter, Match, Cross) admit fully pipelined, per-record
execution, while group-at-a-time contracts (Reduce, CoGroup) must see all
records of a key group before producing output.  The distinction drives
both optimizer choices and microstep eligibility (Section 5.2).
"""

from __future__ import annotations

import enum


class Contract(enum.Enum):
    """Second-order function contracts plus plan-structural pseudo-contracts."""

    SOURCE = "source"
    SINK = "sink"

    MAP = "map"
    FLAT_MAP = "flat_map"
    FILTER = "filter"
    UNION = "union"

    REDUCE = "reduce"          # combinable aggregation: fn(a, b) -> merged
    REDUCE_GROUP = "reduce_group"  # general group function: fn(key, group) -> iter
    MATCH = "match"            # equi-join, record-at-a-time per pair
    CROSS = "cross"            # cartesian product
    COGROUP = "cogroup"        # full outer group pairing
    INNER_COGROUP = "inner_cogroup"  # group pairing, key must exist on both sides

    # Iteration pseudo-contracts (complex operators and their placeholders).
    BULK_ITERATION = "bulk_iteration"
    DELTA_ITERATION = "delta_iteration"
    PARTIAL_SOLUTION = "partial_solution"
    WORKSET = "workset"
    SOLUTION_SET = "solution_set"

    # Stateful operators that merge the solution-set index into a join
    # or cogroup (Section 5.3: "we merge the S index into o").
    SOLUTION_JOIN = "solution_join"
    SOLUTION_COGROUP = "solution_cogroup"


#: Contracts whose UDF consumes one record (or one record pair) at a time.
#: These are the operators permitted on the dynamic data path of a
#: microstep-executable delta iteration (Section 5.2).
_RECORD_AT_A_TIME = frozenset(
    {
        Contract.MAP,
        Contract.FLAT_MAP,
        Contract.FILTER,
        Contract.UNION,
        Contract.MATCH,
        Contract.CROSS,
        Contract.SOLUTION_JOIN,
    }
)

#: Contracts that require a full key group before invoking the UDF.
_GROUP_AT_A_TIME = frozenset(
    {
        Contract.REDUCE,
        Contract.REDUCE_GROUP,
        Contract.COGROUP,
        Contract.INNER_COGROUP,
        Contract.SOLUTION_COGROUP,
    }
)

#: Contracts with two data inputs.
BINARY_CONTRACTS = frozenset(
    {
        Contract.MATCH,
        Contract.CROSS,
        Contract.COGROUP,
        Contract.INNER_COGROUP,
        Contract.UNION,
        Contract.SOLUTION_JOIN,
        Contract.SOLUTION_COGROUP,
    }
)

#: Contracts that group or join by a key and therefore require their
#: input(s) to be partitioned (or replicated) accordingly.
KEYED_CONTRACTS = frozenset(
    {
        Contract.REDUCE,
        Contract.REDUCE_GROUP,
        Contract.MATCH,
        Contract.COGROUP,
        Contract.INNER_COGROUP,
        Contract.SOLUTION_JOIN,
        Contract.SOLUTION_COGROUP,
    }
)


def is_record_at_a_time(contract: Contract) -> bool:
    """True if the contract's UDF is invoked per record (pair)."""
    return contract in _RECORD_AT_A_TIME


def is_group_at_a_time(contract: Contract) -> bool:
    """True if the contract's UDF needs a whole key group."""
    return contract in _GROUP_AT_A_TIME


def is_binary(contract: Contract) -> bool:
    """True if the contract consumes two data inputs."""
    return contract in BINARY_CONTRACTS


def is_keyed(contract: Contract) -> bool:
    """True if the contract operates on key groups / key-equal pairs."""
    return contract in KEYED_CONTRACTS
