"""Logical plan DAG: operator nodes and embedded iteration constructs.

The plan is a directed acyclic graph of :class:`LogicalNode`.  Iterations
never introduce cycles in the represented graph: a bulk iteration is a
complex operator ``(G, I, O, T)`` (Section 4.1) holding its step function
``G`` as a nested subplan rooted at a *partial-solution placeholder*; a
delta iteration ``(Δ, S0, W0)`` (Section 5.1) holds Δ rooted at a
*solution-set* and a *workset* placeholder.  The feedback edge exists only
operationally, inside the executor.
"""

from __future__ import annotations

import itertools
from collections import deque

from repro.common.errors import InvalidPlanError
from repro.common.keys import normalize_key_fields
from repro.dataflow.contracts import Contract, is_binary

_node_ids = itertools.count(1)


class LogicalNode:
    """One operator in the logical plan.

    Parameters
    ----------
    contract:
        The PACT contract (second-order function) of the operator.
    inputs:
        Producer nodes, in input-slot order.
    udf:
        The user-defined first-order function; signature depends on the
        contract (see :mod:`repro.dataflow.dataset`).
    key_fields:
        Per-input key field positions for keyed contracts; ``None`` entries
        for key-less inputs.
    name:
        Human-readable label used in plan dumps and metrics.
    data:
        For sources: the record collection (list of tuples).
    """

    def __init__(self, contract, inputs=(), udf=None, key_fields=None,
                 name=None, data=None):
        self.id = next(_node_ids)
        self.contract = contract
        self.inputs = list(inputs)
        self.udf = udf
        if key_fields is None:
            key_fields = tuple(None for _ in self.inputs)
        self.key_fields = tuple(
            None if kf is None else normalize_key_fields(kf) for kf in key_fields
        )
        self.name = name or f"{contract.value}#{self.id}"
        self.data = data
        #: per input slot: mapping {input field position -> output field
        #: position} of fields the UDF forwards unmodified.  Used for
        #: physical-property preservation and key-constancy analysis.
        self.forwarded_fields: dict[int, dict[int, int]] = {}
        #: optimizer statistics; sources carry exact sizes.
        self.estimated_size: float | None = (
            float(len(data)) if data is not None else None
        )
        #: REDUCE only: whether the UDF is associative/commutative and may
        #: be applied as a pre-shuffle combiner.
        self.combinable = contract is Contract.REDUCE
        #: whether the UDF is a pure function of its input record; the
        #: optimizer only relocates (e.g. pushes down) deterministic UDFs
        self.deterministic = True
        #: FILTER only: field positions the predicate reads, or ``None``
        #: (unknown).  Declaring them (``DataSet.filter(fields=...)``)
        #: lets the optimizer push the filter below a join's ship when
        #: those fields are identity-forwarded from one join input
        self.read_fields: tuple[int, ...] | None = None

    def with_forwarded_fields(self, input_index, mapping):
        """Declare that ``mapping`` (src field -> dst field) survives the UDF.

        This is the OutputContract mechanism of the PACT model; the
        optimizer uses it to preserve partitioning/sort properties through
        the operator, and the microstep analysis uses it to prove key
        constancy (Section 5.2).
        """
        current = self.forwarded_fields.setdefault(input_index, {})
        current.update({int(k): int(v) for k, v in mapping.items()})
        return self

    def key_of_input(self, index):
        return self.key_fields[index] if index < len(self.key_fields) else None

    def is_source(self):
        return self.contract is Contract.SOURCE

    def is_iteration(self):
        return self.contract in (Contract.BULK_ITERATION, Contract.DELTA_ITERATION)

    def is_placeholder(self):
        return self.contract in (
            Contract.PARTIAL_SOLUTION,
            Contract.WORKSET,
            Contract.SOLUTION_SET,
        )

    def __repr__(self):
        ins = ",".join(str(i.id) for i in self.inputs)
        return f"<{self.name} id={self.id} in=[{ins}]>"


class BulkIterationNode(LogicalNode):
    """Complex operator for a bulk iteration ``(G, I, O, T)`` / ``(G, I, O, n)``.

    ``inputs[0]`` provides the initial partial solution.  The step function
    is the subplan from :attr:`placeholder` to :attr:`body_output`;
    :attr:`termination` optionally names a node inside the body whose empty
    result after a superstep stops the loop (the criterion ``T``).
    """

    def __init__(self, initial, max_iterations, name=None):
        super().__init__(Contract.BULK_ITERATION, inputs=[initial], name=name)
        if max_iterations < 1:
            raise InvalidPlanError("bulk iteration needs max_iterations >= 1")
        self.max_iterations = int(max_iterations)
        self.placeholder = LogicalNode(
            Contract.PARTIAL_SOLUTION, name=f"{self.name}.partial_solution"
        )
        self.placeholder.enclosing_iteration = self
        self.body_output: LogicalNode | None = None
        self.termination: LogicalNode | None = None
        #: optional driver-side convergence test fn(prev_records, new_records)
        #: -> bool, used when no termination subplan is given.
        self.convergence_check = None

    def close(self, body_output, termination=None, convergence_check=None):
        self.body_output = body_output
        self.termination = termination
        self.convergence_check = convergence_check
        return self


class DeltaIterationNode(LogicalNode):
    """Complex operator for an incremental (workset) iteration ``(Δ, S0, W0)``.

    ``inputs[0]`` is the initial solution set ``S0`` (records uniquely
    identified by ``key_fields``); ``inputs[1]`` is the initial workset
    ``W0``.  The step function Δ is the subplan from
    :attr:`solution_placeholder` / :attr:`workset_placeholder` to
    :attr:`delta_output` and :attr:`workset_output`.  After each superstep
    the delta set is merged into the solution set with ``∪̇`` (Section 5.1),
    consulting :attr:`should_replace` when a key collides.  The iteration
    terminates when the next workset is empty.
    """

    MODES = ("superstep", "microstep", "async", "auto")

    def __init__(self, initial_solution, initial_workset, key_fields,
                 max_iterations, name=None):
        super().__init__(
            Contract.DELTA_ITERATION,
            inputs=[initial_solution, initial_workset],
            name=name,
        )
        if max_iterations < 1:
            raise InvalidPlanError("delta iteration needs max_iterations >= 1")
        self.max_iterations = int(max_iterations)
        self.solution_key = normalize_key_fields(key_fields)
        self.solution_placeholder = LogicalNode(
            Contract.SOLUTION_SET, name=f"{self.name}.solution_set"
        )
        self.solution_placeholder.enclosing_iteration = self
        self.workset_placeholder = LogicalNode(
            Contract.WORKSET, name=f"{self.name}.workset"
        )
        self.workset_placeholder.enclosing_iteration = self
        self.delta_output: LogicalNode | None = None
        self.workset_output: LogicalNode | None = None
        #: fn(new_record, old_record) -> bool; True if the delta record
        #: supersedes the stored record (the CPO comparator of Section 5.1).
        #: ``None`` means the delta always replaces.
        self.should_replace = None
        self.mode = "auto"

    def close(self, delta_output, workset_output, should_replace=None,
              mode="auto"):
        if mode not in self.MODES:
            raise InvalidPlanError(f"unknown delta iteration mode {mode!r}")
        self.delta_output = delta_output
        self.workset_output = workset_output
        self.should_replace = should_replace
        self.mode = mode
        return self


def ancestors(node, stop=()):
    """All transitive producers of ``node`` (inclusive), respecting ``stop``.

    Traversal does not descend below nodes in ``stop`` and does not enter
    nested iteration bodies (an iteration node is treated as an opaque
    complex operator whose inputs are its outer inputs).
    """
    stop = set(stop)
    seen = {}
    stack = [node]
    while stack:
        cur = stack.pop()
        if cur.id in seen:
            continue
        seen[cur.id] = cur
        if cur in stop:
            continue
        stack.extend(cur.inputs)
    return list(seen.values())


def iteration_body_nodes(iteration):
    """All nodes of an iteration's step-function subplan, placeholders included.

    The body consists of every ancestor of the body outputs (and the
    termination node, for bulk iterations).  Outer inputs of the iteration
    node itself are excluded; nodes on the constant data path (e.g. a
    source joined in every superstep) *are* included, because they execute
    inside the loop scope (cached after the first superstep, Section 4.3).
    """
    roots = _body_roots(iteration)
    outer = set(iteration.inputs)
    result = {}
    for root in roots:
        for node in ancestors(root, stop=outer):
            if node not in outer:
                result[node.id] = node
    return list(result.values())


def _body_roots(iteration):
    if iteration.contract is Contract.BULK_ITERATION:
        roots = [iteration.body_output]
        if iteration.termination is not None:
            roots.append(iteration.termination)
    else:
        roots = [iteration.delta_output, iteration.workset_output]
    missing = [r for r in roots if r is None]
    if missing:
        raise InvalidPlanError(f"iteration {iteration.name} was never closed")
    return roots


def dynamic_path_nodes(iteration):
    """Body nodes on the *dynamic data path* (Section 4.1).

    These are the nodes reachable from the iteration's placeholder(s) —
    they process different data in every superstep.  The complement within
    the body is the constant data path, eligible for caching.
    """
    body = iteration_body_nodes(iteration)
    by_id = {n.id: n for n in body}
    consumers: dict[int, list[LogicalNode]] = {n.id: [] for n in body}
    for node in body:
        for inp in node.inputs:
            if inp.id in by_id:
                consumers[inp.id].append(node)
    if iteration.contract is Contract.BULK_ITERATION:
        seeds = [iteration.placeholder]
    else:
        seeds = [iteration.solution_placeholder, iteration.workset_placeholder]
    dynamic = {}
    queue = deque(s for s in seeds if s.id in by_id)
    while queue:
        cur = queue.popleft()
        if cur.id in dynamic:
            continue
        dynamic[cur.id] = cur
        queue.extend(consumers[cur.id])
    return list(dynamic.values())


def topological_order(roots, stop=()):
    """Kahn topological order over the ancestors of ``roots``.

    Raises :class:`InvalidPlanError` on cycles (which can only arise from
    plan-construction bugs, since iterations are nested, not cyclic).
    """
    nodes = {}
    for root in roots:
        for node in ancestors(root, stop=stop):
            nodes[node.id] = node
    indegree = {nid: 0 for nid in nodes}
    consumers: dict[int, list[int]] = {nid: [] for nid in nodes}
    for node in nodes.values():
        for inp in node.inputs:
            if inp.id in nodes:
                indegree[node.id] += 1
                consumers[inp.id].append(node.id)
    ready = deque(sorted(nid for nid, deg in indegree.items() if deg == 0))
    order = []
    while ready:
        nid = ready.popleft()
        order.append(nodes[nid])
        for consumer in consumers[nid]:
            indegree[consumer] -= 1
            if indegree[consumer] == 0:
                ready.append(consumer)
    if len(order) != len(nodes):
        raise InvalidPlanError("cycle detected in logical plan")
    return order


class LogicalPlan:
    """A complete program: one or more sink nodes plus all their ancestors."""

    def __init__(self, sinks):
        self.sinks = list(sinks)
        if not self.sinks:
            raise InvalidPlanError("plan has no sinks")

    def nodes(self):
        """Every node of the plan, iteration bodies included."""
        result = {}
        pending = list(topological_order(self.sinks))
        while pending:
            node = pending.pop()
            if node.id in result:
                continue
            result[node.id] = node
            if node.is_iteration():
                pending.extend(iteration_body_nodes(node))
        return list(result.values())

    def validate(self):
        """Structural validation; raises :class:`InvalidPlanError` on problems."""
        for node in self.nodes():
            self._validate_node(node)
        return self

    def _validate_node(self, node):
        if is_binary(node.contract) and len(node.inputs) != 2:
            raise InvalidPlanError(
                f"{node.name}: contract {node.contract.value} needs 2 inputs, "
                f"got {len(node.inputs)}"
            )
        if node.contract is Contract.MATCH:
            left, right = node.key_fields
            if left is None or right is None:
                raise InvalidPlanError(f"{node.name}: match requires keys on both sides")
            if len(left) != len(right):
                raise InvalidPlanError(
                    f"{node.name}: key arity mismatch {left} vs {right}"
                )
        if node.is_placeholder() and not hasattr(node, "enclosing_iteration"):
            raise InvalidPlanError(
                f"{node.name}: placeholder used outside an iteration"
            )
        if node.is_iteration():
            _body_roots(node)  # raises if never closed
