"""The fluent ``DataSet`` API for authoring logical dataflow programs.

Records are tuples; key arguments are field positions (an int or a tuple
of ints).  UDF signatures per operator:

=================  ==========================================================
``map``            ``fn(record) -> record``
``flat_map``       ``fn(record) -> iterable of records``
``filter``         ``fn(record) -> bool``
``reduce_by_key``  ``fn(a, b) -> merged`` — associative & commutative, so the
                   optimizer may apply it as a pre-shuffle combiner
``reduce_group``   ``fn(key, records: list) -> iterable of records``
``join``           ``fn(left, right) -> record | None`` (or an iterable of
                   records when ``flat=True``)
``cogroup``        ``fn(key, left: list, right: list) -> iterable``
``cross``          ``fn(left, right) -> record | None``
=================  ==========================================================

Joining or cogrouping a delta iteration's solution set produces a stateful
operator that probes the partitioned solution-set index directly
(Section 5.3); the solution-set side must be keyed on the iteration's
declared solution key.
"""

from __future__ import annotations

from repro.common.errors import InvalidPlanError
from repro.common.keys import normalize_key_fields
from repro.dataflow.contracts import Contract
from repro.dataflow.graph import LogicalNode


class DataSet:
    """A handle on one logical operator's output within an environment."""

    def __init__(self, env, node):
        self._env = env
        self._node = node

    # ------------------------------------------------------------------
    # plumbing

    @property
    def node(self):
        return self._node

    @property
    def env(self):
        return self._env

    def _wrap(self, node):
        return DataSet(self._env, node)

    def name(self, label):
        """Set a human-readable operator label (returns self)."""
        self._node.name = label
        return self

    def with_forwarded_fields(self, mapping, input_index=0):
        """Declare fields forwarded unmodified by this operator's UDF.

        ``mapping`` is ``{input_field: output_field}``.  Needed for the
        optimizer to preserve partitioning through the operator and for
        microstep key-constancy analysis (Section 5.2).
        """
        self._node.with_forwarded_fields(input_index, mapping)
        return self

    def with_estimated_size(self, size):
        """Override the optimizer's cardinality estimate for this output."""
        self._node.estimated_size = float(size)
        return self

    # ------------------------------------------------------------------
    # record-at-a-time operators

    def map(self, fn, name=None, columnar_udf=None):
        """Record-at-a-time transform.

        ``columnar_udf`` optionally supplies an equivalent
        struct-of-arrays transform ``fn(columns, length) -> (columns,
        length)`` over ``[(typecode, buffer), ...]`` columns (see
        :mod:`repro.common.columns`).  Under columnar execution, fused
        chains apply it to chunks that columnarize — whole column
        buffers at a time instead of one record per call — falling back
        to ``fn`` rows otherwise.  The caller promises both produce
        bitwise-identical records; the parity suite holds opt-ins to
        that contract.
        """
        node = LogicalNode(Contract.MAP, [self._node], udf=fn, name=name)
        if columnar_udf is not None:
            node.columnar_udf = columnar_udf
        return self._wrap(node)

    def flat_map(self, fn, name=None):
        return self._wrap(
            LogicalNode(Contract.FLAT_MAP, [self._node], udf=fn, name=name)
        )

    def filter(self, fn, name=None, deterministic=True, fields=None):
        """Keep records for which ``fn(record)`` is truthy.

        ``fields`` optionally declares the field positions the predicate
        reads; combined with ``deterministic=True`` (the default
        promise) it lets the optimizer push the filter below a
        downstream join's ship when those fields are identity-forwarded
        from one join input (see :mod:`repro.optimizer.pushdown`).
        Pass ``deterministic=False`` for predicates with side effects or
        hidden state — they are never relocated.
        """
        node = LogicalNode(Contract.FILTER, [self._node], udf=fn, name=name)
        node.deterministic = bool(deterministic)
        if fields is not None:
            node.read_fields = normalize_key_fields(fields)
        return self._wrap(node)

    def union(self, other, name=None):
        self._check_env(other)
        return self._wrap(
            LogicalNode(
                Contract.UNION, [self._node, other._node], name=name
            )
        )

    # ------------------------------------------------------------------
    # keyed operators

    def reduce_by_key(self, key_fields, fn, name=None):
        """Combinable aggregation: merge records of a key group pairwise."""
        node = LogicalNode(
            Contract.REDUCE,
            [self._node],
            udf=fn,
            key_fields=[normalize_key_fields(key_fields)],
            name=name,
        )
        return self._wrap(node)

    def reduce_group(self, key_fields, fn, name=None):
        """General (non-combinable) group transformation."""
        node = LogicalNode(
            Contract.REDUCE_GROUP,
            [self._node],
            udf=fn,
            key_fields=[normalize_key_fields(key_fields)],
            name=name,
        )
        return self._wrap(node)

    def sum_by_key(self, key_fields, value_field, name=None):
        """Per-key sum of one numeric field (a combinable Reduce)."""
        value_field = int(value_field)

        def add(a, b):
            merged = list(a)
            merged[value_field] = a[value_field] + b[value_field]
            return tuple(merged)

        return self.reduce_by_key(key_fields, add, name=name or "sum")

    def min_by_key(self, key_fields, value_field, name=None):
        """Per key, the record with the smallest value in ``value_field``."""
        value_field = int(value_field)
        return self.reduce_by_key(
            key_fields,
            lambda a, b: a if a[value_field] <= b[value_field] else b,
            name=name or "min",
        )

    def max_by_key(self, key_fields, value_field, name=None):
        """Per key, the record with the largest value in ``value_field``."""
        value_field = int(value_field)
        return self.reduce_by_key(
            key_fields,
            lambda a, b: a if a[value_field] >= b[value_field] else b,
            name=name or "max",
        )

    def count_by_key(self, key_fields, name=None):
        """``(key..., count)`` records — the word-count primitive."""
        keys = normalize_key_fields(key_fields)

        def to_counted(record):
            return tuple(record[f] for f in keys) + (1,)

        counted = self.map(to_counted, name="attach_count")
        counted.with_forwarded_fields(
            {f: i for i, f in enumerate(keys)}
        )
        width = len(keys)
        return counted.reduce_by_key(
            tuple(range(width)),
            lambda a, b: a[:width] + (a[width] + b[width],),
            name=name or "count",
        )

    def distinct(self, key_fields=None, name=None):
        """Drop duplicate records (or keep one record per key)."""
        if key_fields is None:
            def dedupe(key, group):
                seen = set()
                for rec in group:
                    if rec not in seen:
                        seen.add(rec)
                        yield rec
            # group on the full record width of the first record is unknown
            # statically; fall back to field 0 grouping plus in-group dedupe.
            return self.reduce_group(0, dedupe, name=name or "distinct")

        def first(key, group):
            yield group[0]

        return self.reduce_group(key_fields, first, name=name or "distinct")

    def join(self, other, left_key, right_key, fn, flat=False, name=None):
        """Equi-join (Match contract); solution-set sides become stateful probes."""
        self._check_env(other)
        if other._node.contract is Contract.SOLUTION_SET:
            return self._solution_join(other, left_key, right_key, fn, flat, name)
        if self._node.contract is Contract.SOLUTION_SET:
            raise InvalidPlanError(
                "use workset.join(solution_set, ...); the solution set must "
                "be the right-hand (stateful) side"
            )
        node = LogicalNode(
            Contract.MATCH,
            [self._node, other._node],
            udf=fn,
            key_fields=[
                normalize_key_fields(left_key),
                normalize_key_fields(right_key),
            ],
            name=name,
        )
        node.flat = flat
        return self._wrap(node)

    def cogroup(self, other, left_key, right_key, fn, inner=False, name=None):
        """CoGroup / InnerCoGroup contract over two inputs.

        Against a solution set, ``inner=True`` (the Figure-5 default
        shape) invokes the UDF only for keys present in the solution
        set; ``inner=False`` also invokes it for unknown keys with an
        empty stored-side list — the anti-join shape semi-naive
        evaluation needs (Section 7.1).
        """
        self._check_env(other)
        if other._node.contract is Contract.SOLUTION_SET:
            return self._solution_cogroup(other, left_key, right_key, fn,
                                          name, inner=inner)
        contract = Contract.INNER_COGROUP if inner else Contract.COGROUP
        node = LogicalNode(
            contract,
            [self._node, other._node],
            udf=fn,
            key_fields=[
                normalize_key_fields(left_key),
                normalize_key_fields(right_key),
            ],
            name=name,
        )
        return self._wrap(node)

    def cross(self, other, fn, name=None):
        self._check_env(other)
        node = LogicalNode(
            Contract.CROSS, [self._node, other._node], udf=fn, name=name
        )
        return self._wrap(node)

    # ------------------------------------------------------------------
    # solution-set operators (Section 5.3)

    def _solution_iteration(self, other):
        iteration = other._node.enclosing_iteration
        return iteration

    def _check_solution_key(self, other, right_key):
        iteration = self._solution_iteration(other)
        right = normalize_key_fields(right_key)
        if right != iteration.solution_key:
            raise InvalidPlanError(
                "solution-set side must be keyed on the iteration's solution "
                f"key {iteration.solution_key}, got {right}"
            )
        return right

    def _solution_join(self, other, left_key, right_key, fn, flat, name):
        right = self._check_solution_key(other, right_key)
        node = LogicalNode(
            Contract.SOLUTION_JOIN,
            [self._node, other._node],
            udf=fn,
            key_fields=[normalize_key_fields(left_key), right],
            name=name or "solution_join",
        )
        node.flat = flat
        node.enclosing_iteration = self._solution_iteration(other)
        return self._wrap(node)

    def _solution_cogroup(self, other, left_key, right_key, fn, name,
                          inner=True):
        right = self._check_solution_key(other, right_key)
        node = LogicalNode(
            Contract.SOLUTION_COGROUP,
            [self._node, other._node],
            udf=fn,
            key_fields=[normalize_key_fields(left_key), right],
            name=name or "solution_cogroup",
        )
        node.inner = inner
        node.enclosing_iteration = self._solution_iteration(other)
        return self._wrap(node)

    # ------------------------------------------------------------------
    # terminal operations

    def output(self, name=None):
        """Attach a sink; the sink's records are available after execution."""
        sink = LogicalNode(Contract.SINK, [self._node], name=name or "sink")
        self._env._register_sink(sink)
        return self._wrap(sink)

    def collect(self):
        """Optimize, execute, and return this dataset's records as a list."""
        return self._env.collect(self)

    def store(self, name) -> list:
        """Execute and persist this dataset in the environment's part
        store under ``name``; returns the written part ids.  Reload it
        with ``env.from_store(name)``."""
        return self._env.register_dataset(name, self)

    def explain(self) -> str:
        """Compile (without executing) and describe the chosen plan.

        The report shows, per operator, the local strategy and the
        estimated vs *observed* cardinality (measured by this
        environment's previous runs when adaptivity is on), and per
        edge the ship strategy plus any optimizer-v2 rewrites — pushed
        filters and adaptive switch candidates.
        """
        from repro.dataflow.graph import LogicalPlan
        from repro.optimizer.visualize import explain_plan
        sink = LogicalNode(Contract.SINK, [self._node], name="explain")
        exec_plan = self._env._compile(LogicalPlan([sink]))
        return explain_plan(exec_plan, self._env)

    # ------------------------------------------------------------------

    def _check_env(self, other):
        if not isinstance(other, DataSet):
            raise TypeError(f"expected DataSet, got {type(other).__name__}")
        if other._env is not self._env:
            raise InvalidPlanError("cannot combine datasets from different environments")
