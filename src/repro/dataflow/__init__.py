"""Logical dataflow layer: PACT contracts, plan DAG, and the fluent API.

A program is authored against :class:`~repro.dataflow.environment.ExecutionEnvironment`
and :class:`~repro.dataflow.dataset.DataSet`; both build a
:class:`~repro.dataflow.graph.LogicalPlan` of operator nodes carrying PACT
second-order contracts (Section 3 of the paper).  Iterations are embedded
as complex operators holding nested step-function subplans (Sections 4-5).
"""

from repro.dataflow.contracts import Contract, is_record_at_a_time
from repro.dataflow.dataset import DataSet
from repro.dataflow.environment import ExecutionEnvironment
from repro.dataflow.graph import (
    BulkIterationNode,
    DeltaIterationNode,
    LogicalNode,
    LogicalPlan,
)

__all__ = [
    "BulkIterationNode",
    "Contract",
    "DataSet",
    "DeltaIterationNode",
    "ExecutionEnvironment",
    "LogicalNode",
    "LogicalPlan",
    "is_record_at_a_time",
]
