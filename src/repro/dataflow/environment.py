"""Execution environment: program entry point, sources, iteration builders.

One environment models one cluster session: it fixes the parallelism,
owns the metric collector, and provides the optimizer gateway.  Programs
author logical plans via :class:`~repro.dataflow.dataset.DataSet` handles
and trigger execution with :meth:`ExecutionEnvironment.collect` or
:meth:`ExecutionEnvironment.execute`.
"""

from __future__ import annotations

from repro.common.errors import InvalidPlanError
from repro.dataflow.contracts import Contract
from repro.dataflow.dataset import DataSet
from repro.dataflow.graph import (
    BulkIterationNode,
    DeltaIterationNode,
    LogicalNode,
    LogicalPlan,
)


class BulkIteration:
    """Builder for a bulk iteration ``(G, I, O, T)``; see Section 4.1."""

    def __init__(self, env, node: BulkIterationNode):
        self._env = env
        self._node = node

    @property
    def partial_solution(self) -> DataSet:
        """The dataset ``I`` — the latest partial solution inside the body."""
        return DataSet(self._env, self._node.placeholder)

    def close(self, body, termination=None, convergence_check=None) -> DataSet:
        """Close the loop: ``body`` is ``O``, the next partial solution.

        ``termination`` is a dataset inside the body; the iteration stops
        at the first superstep after which it is empty (the criterion
        ``T``).  Alternatively ``convergence_check(prev, new) -> bool``
        compares materialized partial solutions.  With neither, the
        iteration runs for exactly ``max_iterations`` supersteps (the
        ``(G, I, O, n)`` form).
        """
        term_node = termination.node if termination is not None else None
        self._node.close(body.node, term_node, convergence_check)
        return DataSet(self._env, self._node)


class DeltaIteration:
    """Builder for an incremental (workset) iteration ``(Δ, S0, W0)``."""

    def __init__(self, env, node: DeltaIterationNode):
        self._env = env
        self._node = node

    @property
    def solution_set(self) -> DataSet:
        """The state ``S``; only usable as the stateful side of a join or
        cogroup keyed on the iteration's solution key (Section 5.3)."""
        return DataSet(self._env, self._node.solution_placeholder)

    @property
    def workset(self) -> DataSet:
        """The current workset ``W``."""
        return DataSet(self._env, self._node.workset_placeholder)

    def close(self, delta, next_workset, should_replace=None,
              mode="auto") -> DataSet:
        """Close Δ: ``delta`` holds ``D`` (same schema as ``S``),
        ``next_workset`` holds ``W_{i+1}``.

        ``should_replace(new, old)`` is the CPO comparator of Section 5.1.
        ``mode`` is one of ``superstep`` (batch-incremental),
        ``microstep`` (per-element with supersteps), ``async``
        (no barriers), or ``auto`` (microstep if eligible).
        """
        self._node.close(delta.node, next_workset.node, should_replace, mode)
        return DataSet(self._env, self._node)


class ExecutionEnvironment:
    """Entry point for authoring and running dataflow programs."""

    def __init__(self, parallelism: int = 4, optimize: bool = True,
                 cost_weights=None, config=None, backend=None):
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        self.parallelism = parallelism
        self.optimize = optimize
        self.cost_weights = cost_weights
        from repro.cluster import resolve_backend
        from repro.cluster.context import LOCAL
        from repro.runtime.config import RuntimeConfig
        from repro.runtime.metrics import MetricsCollector
        #: where plans execute: ``None``/"simulated" keeps the in-process
        #: reference backend; "multiprocess" forks one worker per
        #: partition (see :mod:`repro.cluster`)
        self.backend = resolve_backend(backend)
        #: the calling process's cluster context; the multiprocess
        #: backend overrides this inside each forked worker
        self.cluster = LOCAL
        #: runtime switches; ``config.check_invariants`` (on by default
        #: under pytest) attaches the conservation-law audit layer of
        #: :mod:`repro.runtime.invariants` to this session's metrics
        self.config = config or RuntimeConfig()
        self.metrics = MetricsCollector()
        if self.config.check_invariants:
            from repro.runtime.invariants import attach_checker
            attach_checker(self.metrics)
        #: the session's tracer when ``config.trace`` is set; the
        #: multiprocess backend additionally attaches per-worker tracers
        #: and leaves their timelines in ``last_worker_traces``
        self.tracer = None
        if self.config.trace:
            from repro.observability import attach_tracer
            self.tracer = attach_tracer(self.metrics)
        #: the session's live metric registry when ``config.telemetry``
        #: is set, else None; SPMD backends merge worker snapshots into
        #: it after every job, and ``resource_ledger`` accumulates the
        #: per-job bills
        self.telemetry = None
        self.resource_ledger = None
        if self.config.telemetry:
            from repro.observability.telemetry import (
                MetricRegistry,
                ResourceLedger,
            )
            self.telemetry = MetricRegistry()
            self.metrics.telemetry = self.telemetry
            self.resource_ledger = ResourceLedger()
        #: runtime cardinality observer (optimizer v2): after every run
        #: it derives observed per-operator cardinalities from the
        #: merged logical counters, and the next compilation in this
        #: environment prefers them over the textbook defaults.  Only
        #: attached when ``config.adaptive`` is on, so the
        #: ``REPRO_ADAPTIVE=0`` escape hatch keeps observation fully
        #: off-path
        self.observer = None
        if self.config.adaptive:
            from repro.optimizer.observer import CardinalityObserver
            self.observer = CardinalityObserver()
        self._job_seq = 0
        self.last_worker_traces = None
        self._sinks: list[LogicalNode] = []
        self.last_executor = None
        self.last_plan = None
        #: per-node physical overrides applied after planning:
        #: {node id: {"ship": {input: ShipStrategy}, "local": LocalStrategy,
        #:            "combiner": bool}} — used by experiments that force a
        #: specific plan (e.g. the two PageRank plans of Figure 4)
        self.plan_overrides: dict[int, dict] = {}
        #: fault tolerance (Section 4.2): snapshot iteration state every k
        #: supersteps (0 disables); see repro.runtime.recovery
        self.checkpoint_interval: int = 0
        #: callable(superstep) that may raise SimulatedFailure; tests and
        #: benchmarks inject machine failures through this hook
        self.failure_injector = None
        #: populated after a run when checkpointing was active
        self.last_checkpoint_store = None
        #: out-of-core substrate (repro.storage): the session's spill
        #: directory, created lazily — eagerly before a run when
        #: ``config.memory_budget_bytes`` is set, so forked workers nest
        #: their scratch space inside it — and removed by close()
        self.storage_session = None
        self._part_store = None

    @property
    def async_poll_batch(self) -> int:
        """Asynchronous execution: how many queue elements one partition
        drains per polling round (interleaving granularity; any value
        must converge to the same fixpoint).

        This is a validated first-class field of
        :class:`~repro.runtime.config.RuntimeConfig`; assigning here
        rebuilds the environment's config (configs may be shared across
        environments, so the session never mutates one in place).
        """
        return self.config.async_poll_batch

    @async_poll_batch.setter
    def async_poll_batch(self, value):
        import dataclasses
        self.config = dataclasses.replace(
            self.config, async_poll_batch=value
        )

    # ------------------------------------------------------------------
    # sources

    def from_iterable(self, records, name=None) -> DataSet:
        """Create a source from an in-memory record collection.

        Records must be tuples; the collection is materialized eagerly so
        the optimizer has an exact cardinality.
        """
        data = list(records)
        node = LogicalNode(Contract.SOURCE, data=data, name=name or "source")
        return DataSet(self, node)

    def generate_sequence(self, count, fn=None, name=None) -> DataSet:
        """Source of ``(i,)`` or ``fn(i)`` records for ``i`` in [0, count)."""
        if fn is None:
            fn = lambda i: (i,)
        return self.from_iterable(
            (fn(i) for i in range(count)), name=name or "sequence"
        )

    # ------------------------------------------------------------------
    # iterations

    def iterate_bulk(self, initial: DataSet, max_iterations: int,
                     name=None) -> BulkIteration:
        node = BulkIterationNode(initial.node, max_iterations,
                                 name=name or "bulk_iteration")
        return BulkIteration(self, node)

    def iterate_delta(self, initial_solution: DataSet,
                      initial_workset: DataSet, key_fields,
                      max_iterations: int, name=None) -> DeltaIteration:
        node = DeltaIterationNode(
            initial_solution.node, initial_workset.node, key_fields,
            max_iterations, name=name or "delta_iteration",
        )
        return DeltaIteration(self, node)

    # ------------------------------------------------------------------
    # execution

    def _register_sink(self, sink: LogicalNode):
        self._sinks.append(sink)

    def _compile(self, plan: LogicalPlan):
        plan.validate()
        if self.optimize:
            from repro.optimizer import optimize_plan
            exec_plan = optimize_plan(plan, self)
        else:
            from repro.optimizer.naive import naive_plan
            exec_plan = naive_plan(plan, self.parallelism)
        for node_id, override in self.plan_overrides.items():
            ann = exec_plan.annotations.get(node_id)
            if ann is None:
                continue
            ann.ship.update(override.get("ship", {}))
            if "local" in override:
                ann.local = override["local"]
            if "combiner" in override:
                ann.combiner = override["combiner"]
        # adaptive eligibility is computed after overrides so the specs
        # describe the plan that actually runs (experiments may force a
        # specific baseline ship); it is recorded with adaptivity on or
        # off — the executor consults config.adaptive, the plan itself
        # is identical in both modes
        from repro.optimizer.adaptive import annotate_adaptive
        annotate_adaptive(exec_plan, self)
        # chain fusion runs last so it sees the final ship/dam/combiner
        # annotations, overrides included (an override that repartitions
        # a fused edge must break the chain)
        if self.config.chaining:
            from repro.optimizer.chaining import plan_chains
            plan_chains(exec_plan)
        return exec_plan

    def _execute_plan(self, plan: LogicalPlan):
        if self.config.memory_budget_bytes:
            # created before the backend may fork, so every worker's
            # spill directory nests inside this session's tree
            self._ensure_storage_session()
        exec_plan = self._compile(plan)
        self._job_seq += 1
        # plans are compiled here, backend-agnostically; the backend only
        # decides where the compiled plan is interpreted (and is expected
        # to set last_executor for introspection)
        results = self.backend.execute_plan(self, exec_plan)
        self.last_plan = exec_plan
        if self.observer is not None:
            self.observer.ingest(exec_plan, self.metrics)
        if self.tracer is not None and self.config.trace_path:
            from repro.observability import write_jsonl
            write_jsonl(
                self.config.trace_path, self.trace_timelines,
                meta={"backend": self.backend.name,
                      "parallelism": self.parallelism},
            )
        return results

    def collect(self, dataset: DataSet) -> list:
        """Execute the plan rooted at ``dataset`` and return its records."""
        sink = LogicalNode(Contract.SINK, [dataset.node], name="collect")
        results = self._execute_plan(LogicalPlan([sink]))
        return results[sink.id]

    def execute(self) -> dict[str, list]:
        """Execute all registered sinks; returns {sink name: records}."""
        if not self._sinks:
            raise InvalidPlanError("no sinks registered; nothing to execute")
        results = self._execute_plan(LogicalPlan(list(self._sinks)))
        return {sink.name: results[sink.id] for sink in self._sinks}

    # ------------------------------------------------------------------
    # storage (out-of-core substrate; see repro.storage)

    def _ensure_storage_session(self):
        if self.storage_session is None or self.storage_session.closed:
            from repro.storage.session import StorageSession
            self.storage_session = StorageSession()
        return self.storage_session

    def attach_part_store(self, root=None):
        """Create (or return) this session's dataset part store.

        With ``root=None`` the store lives inside the session's spill
        directory and disappears with it; pass an explicit ``root`` to
        persist datasets across sessions (the manifest is re-validated
        against the on-disk format version on reopen).
        """
        if self._part_store is None:
            from repro.storage.partstore import PartStore
            if root is None:
                root = self._ensure_storage_session().subdir("parts")
            self._part_store = PartStore(root)
        return self._part_store

    @property
    def part_store(self):
        return self.attach_part_store()

    def register_dataset(self, name, dataset_or_records,
                         key_fields=None) -> list[str]:
        """Persist a dataset (or record collection) as named parts.

        A :class:`DataSet` argument is executed first; records are then
        partitioned exactly like a source (round-robin over the
        session's parallelism) and written to the part store, one
        stats-tracked, content-addressed part per partition.

        ``key_fields`` (an int or tuple of ints) additionally records
        each part's key range in its manifest stats row, enabling
        :meth:`from_store` to prune whole parts against a key predicate
        without reading them.
        """
        from repro.common.keys import normalize_key_fields
        from repro.runtime import channels
        if isinstance(dataset_or_records, DataSet):
            records = self.collect(dataset_or_records)
        else:
            records = list(dataset_or_records)
        partitions = channels.round_robin(records, self.parallelism)
        keys_per_partition = None
        if key_fields is not None:
            fields = normalize_key_fields(key_fields)
            extract = (
                (lambda r: r[fields[0]]) if len(fields) == 1
                else (lambda r: tuple(r[f] for f in fields))
            )
            keys_per_partition = [
                [extract(r) for r in part] for part in partitions
            ]
        return self.part_store.register(
            name, partitions, keys_per_partition=keys_per_partition
        )

    def from_store(self, name, key_range=None) -> DataSet:
        """Source a previously registered dataset from the part store.

        Every part is re-validated (header, cardinality, content hash)
        on load, so a torn write surfaces here as a loud
        ``StorageFormatError`` rather than as wrong answers downstream.

        ``key_range=(lo, hi)`` declares an inclusive key predicate over
        the key recorded at :meth:`register_dataset` time; parts whose
        manifest key range falls entirely outside it (and empty parts)
        are pruned without touching their files — the datamgr-style
        manifest pruning of the optimizer-v2 stats loop.  Either bound
        may be ``None`` for a half-open predicate.  Parts registered
        without key stats are conservatively kept; records inside kept
        parts are *not* filtered (apply the real filter downstream).
        The resulting source carries the exact post-pruning cardinality
        from the stats rows, so the optimizer plans with it.
        """
        store = self.part_store
        part_ids = store.dataset_part_ids(name)
        if key_range is not None:
            part_ids = store.prune_parts(part_ids, key_range)
        parts = [store.load_part(pid) for pid in part_ids]
        return self.from_iterable(
            [record for part in parts for record in part], name=name
        )

    # ------------------------------------------------------------------
    # teardown

    def close(self):
        """Release session resources: spill directory, backend workers.

        Idempotent.  The spill directory is also registered for an
        ``atexit`` sweep, so even an unclosed environment cannot leak
        scratch files past process exit.
        """
        if self.storage_session is not None:
            self.storage_session.close()
        self._part_store = None
        closer = getattr(self.backend, "close", None)
        if closer is not None:
            closer()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # ------------------------------------------------------------------
    # introspection

    @property
    def iteration_summaries(self):
        if self.last_executor is None:
            return []
        return self.last_executor.iteration_summaries

    @property
    def trace_timelines(self):
        """Labelled ``(name, tracer)`` timelines of the last traced run.

        The simulated backend has one driver timeline; the multiprocess
        backend exports each worker's own timeline (the driver's merged
        tree would duplicate every worker span).
        """
        if self.tracer is None:
            return []
        if self.last_worker_traces:
            return [
                (f"worker-{t.rank}", t) for t in self.last_worker_traces
            ]
        return [("driver", self.tracer)]

    def telemetry_text(self) -> str:
        """Prometheus-format snapshot of the session's live registry."""
        if self.telemetry is None:
            raise RuntimeError(
                "telemetry is not enabled: pass "
                "RuntimeConfig(telemetry=True) or set REPRO_TELEMETRY=1"
            )
        from repro.observability.telemetry import prometheus_text
        return prometheus_text(self.telemetry)

    def write_telemetry_series(self, path: str) -> str:
        """Write the session's metric time series as JSONL; returns path."""
        if self.telemetry is None:
            raise RuntimeError(
                "telemetry is not enabled: pass "
                "RuntimeConfig(telemetry=True) or set REPRO_TELEMETRY=1"
            )
        from repro.observability.telemetry import write_series_jsonl
        return write_series_jsonl(
            path, self.telemetry,
            meta={"backend": self.backend.name,
                  "parallelism": self.parallelism},
        )

    def explain(self, dataset: DataSet) -> str:
        """Return the optimizer's chosen physical plan as text, not running it."""
        sink = LogicalNode(Contract.SINK, [dataset.node], name="explain")
        exec_plan = self._compile(LogicalPlan([sink]))
        return exec_plan.describe()
