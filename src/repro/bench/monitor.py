"""``python -m repro.bench monitor <workload>``: live pool status view.

Runs one trace workload on the persistent worker pool with telemetry
and heartbeats enabled, and renders a per-worker status table — rank,
pid, job, superstep, RSS, progress age, heartbeat age, health status —
refreshed from the parent-side :class:`HealthMonitor` ledger while the
job executes.  After the run it prints the final table, the per-job
resource totals from the :class:`ResourceLedger`, and a Prometheus-text
excerpt of the live registry.

``--once`` skips the live rendering and just checks the final state —
the CI smoke mode.  The run gates (``ok=False``) unless every rank
heartbeated with a nonzero RSS and at least one rank reported reaching
superstep 1: precisely the signals a monitoring session exists to show.
"""

from __future__ import annotations

import sys
import threading
import time
import traceback
from dataclasses import dataclass, field

from repro import ExecutionEnvironment
from repro.bench.reporting import render_table
from repro.bench.trace import WORKLOADS
from repro.graphs import erdos_renyi
from repro.observability.telemetry import prometheus_text
from repro.runtime.config import RuntimeConfig

#: registry names worth echoing in the post-run Prometheus excerpt
EXCERPT_METRICS = frozenset({
    "repro_executor_superstep",
    "repro_executor_memo_nodes",
    "repro_worker_rss_bytes",
    "repro_fabric_frames_shm",
    "repro_fabric_frames_inline",
    "repro_fabric_inline_fallbacks",
    "repro_fabric_bytes_sent",
    "repro_spill_bytes_spilled",
})


def _excerpt(text: str) -> str:
    keep = []
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            name = line.split()[2]
        else:
            name = line.split("{", 1)[0].split(" ", 1)[0]
        if name in EXCERPT_METRICS:
            keep.append(line)
    return "\n".join(keep)


def _fmt_age(value) -> str:
    return "-" if value is None else f"{value:.2f}s"


def _fmt_mb(value) -> str:
    if not value:
        return "-"
    return f"{value / (1024 * 1024):.1f} MB"


def _status_table(rows, title: str) -> str:
    table_rows = [
        [row["rank"],
         row["pid"] if row["pid"] is not None else "-",
         row["job"] if row["job"] is not None else "-",
         row["superstep"] if row["superstep"] is not None else "-",
         _fmt_mb(row["rss_bytes"]),
         _fmt_age(row["progress_age_s"]),
         _fmt_age(row["beat_age_s"]),
         row["status"]]
        for row in rows
    ]
    return render_table(
        title,
        ["rank", "pid", "job", "superstep", "rss", "progress age",
         "beat age", "status"],
        table_rows,
    )


@dataclass
class MonitorResult:
    workload: str
    parallelism: int
    interval_s: float
    wall_s: float = 0.0
    supersteps: int = 0
    frames: int = 0
    rows: list[dict] = field(default_factory=list)
    peak_supersteps: dict = field(default_factory=dict)
    warnings_seen: list[str] = field(default_factory=list)
    resource_totals: dict | None = None
    prometheus_excerpt: str = ""
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def report(self) -> str:
        blocks = [_status_table(
            self.rows,
            f"Worker health — {self.workload} on pool "
            f"(parallelism={self.parallelism}, heartbeat every "
            f"{self.interval_s:.2f}s, {self.supersteps} supersteps, "
            f"{self.wall_s:.2f}s wall)",
        )]
        if self.warnings_seen:
            blocks.append("health findings during the run:\n" + "\n".join(
                f"  {w}" for w in self.warnings_seen
            ))
        if self.resource_totals:
            totals = self.resource_totals
            blocks.append(
                f"resources: {totals['jobs']} job(s), "
                f"cpu {totals['cpu_s']:.2f}s, "
                f"peak rss {_fmt_mb(totals['peak_rss_bytes'])}, "
                f"{totals['bytes_shipped']} B shipped, "
                f"{totals['bytes_spilled']} B spilled"
            )
        if self.prometheus_excerpt:
            blocks.append("registry excerpt:\n" + "\n".join(
                f"  {line}" for line in self.prometheus_excerpt.splitlines()
            ))
        blocks.append(
            "OK: every rank heartbeated with live RSS and the gang "
            "made superstep progress."
            if self.ok else
            "FAIL:\n  - " + "\n  - ".join(self.failures)
        )
        return "\n\n".join(blocks)


def _note_rows(result: MonitorResult, rows) -> None:
    """Fold one snapshot into the peak-superstep and warning ledgers."""
    for row in rows:
        step = row["superstep"]
        if step is not None:
            previous = result.peak_supersteps.get(row["rank"], -1)
            result.peak_supersteps[row["rank"]] = max(previous, step)
        if row["status"] not in ("ok", "idle", "no heartbeat yet"):
            note = f"rank {row['rank']}: {row['status']}"
            if note not in result.warnings_seen:
                result.warnings_seen.append(note)


def run(workload: str = "connected_components", parallelism: int = 4,
        num_vertices: int = 4_000, avg_degree: float = 4.0, seed: int = 7,
        interval_s: float = 0.1, once: bool = False,
        refresh_s: float = 0.5, stream=None) -> MonitorResult:
    """Run ``workload`` on the pool and monitor it live.

    ``once`` suppresses the live frames and only evaluates the final
    state (the smoke/CI mode); otherwise the status table re-renders
    every ``refresh_s`` while the job runs, clearing the screen between
    frames when ``stream`` is a terminal.
    """
    if workload not in WORKLOADS:
        raise ValueError(
            f"unknown monitor workload {workload!r}; available: "
            f"{', '.join(sorted(WORKLOADS))}"
        )
    from repro.cluster.pool import PoolBackend

    stream = sys.stdout if stream is None else stream
    runner = WORKLOADS[workload]
    graph = erdos_renyi(num_vertices, avg_degree, seed=seed)
    result = MonitorResult(
        workload=workload, parallelism=parallelism, interval_s=interval_s,
    )

    backend = PoolBackend()
    env = ExecutionEnvironment(
        parallelism, backend=backend,
        config=RuntimeConfig(
            telemetry=True, heartbeat_interval_s=interval_s,
        ),
    )
    outcome: dict = {}

    def job():
        try:
            outcome["result"] = runner(env, graph)
        except BaseException:
            outcome["error"] = traceback.format_exc()

    worker = threading.Thread(target=job, name="repro-monitor-job")
    started = time.perf_counter()
    worker.start()
    try:
        while worker.is_alive():
            worker.join(timeout=refresh_s)
            pool = backend.pool
            if pool is None:
                continue
            rows = pool.monitor.snapshot()
            _note_rows(result, rows)
            if once:
                continue
            elapsed = time.perf_counter() - started
            frame = _status_table(
                rows,
                f"{workload} on pool — live, {elapsed:.1f}s elapsed "
                f"(frame {result.frames + 1})",
            )
            if stream.isatty():
                stream.write("\x1b[2J\x1b[H")
            stream.write(frame + "\n\n")
            stream.flush()
            result.frames += 1
        result.wall_s = time.perf_counter() - started
        pool = backend.pool
        if pool is not None:
            result.rows = pool.monitor.snapshot()
            _note_rows(result, result.rows)
        result.supersteps = env.metrics.supersteps

        if "error" in outcome:
            result.failures.append(
                f"workload raised:\n{outcome['error']}"
            )
        if pool is None:
            result.failures.append("the pool was never started")
        silent = [row["rank"] for row in result.rows
                  if row["pid"] is None]
        if silent:
            result.failures.append(
                f"rank(s) {silent} never sent a heartbeat"
            )
        rssless = [row["rank"] for row in result.rows
                   if row["pid"] is not None and not row["rss_bytes"]]
        if rssless:
            result.failures.append(
                f"rank(s) {rssless} heartbeated without an RSS sample"
            )
        front = max(result.peak_supersteps.values(), default=-1)
        if front < 1:
            result.failures.append(
                f"no rank reported reaching superstep 1 (front: {front}) "
                "— raise the workload size or lower the heartbeat "
                "interval"
            )
        if env.resource_ledger is not None and env.resource_ledger.entries:
            result.resource_totals = env.resource_ledger.totals()
        result.prometheus_excerpt = _excerpt(prometheus_text(env.telemetry))
    finally:
        backend.close()
    return result
