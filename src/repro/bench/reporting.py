"""Plain-text report rendering for the benchmark harness."""

from __future__ import annotations

import os
import platform
import sys
import time


def bench_meta(**knobs) -> dict:
    """The common ``meta`` envelope every ``BENCH_*.json`` payload carries.

    Records the host and interpreter (``host_cpus``, ``python``,
    ``platform``), a UTC timestamp, and whatever config knobs the
    experiment passes (batch size, memory budget, backend, ...) — so a
    result file is comparable across hosts and across the repo's own
    history without guessing what produced it.
    """
    return {
        "host_cpus": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": sys.platform,
        "timestamp": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "knobs": {key: value for key, value in sorted(knobs.items())},
    }


def format_seconds(value: float) -> str:
    if value >= 100:
        return f"{value:,.0f} s"
    if value >= 1:
        return f"{value:.2f} s"
    return f"{value * 1000:.1f} ms"


def format_quantity(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (value and abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    if isinstance(value, int) and abs(value) >= 10_000:
        return f"{value:,}"
    return str(value)


def render_table(title: str, headers: list[str], rows: list[list]) -> str:
    """Aligned fixed-width table like the paper's result listings."""
    cells = [[format_quantity(v) if not isinstance(v, str) else v
              for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells))
        if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(row[i].rjust(widths[i]) if _numeric(row[i])
                      else row[i].ljust(widths[i])
                      for i in range(len(headers)))
        )
    return "\n".join(lines)


def _numeric(text: str) -> bool:
    stripped = text.replace(",", "").replace(".", "").replace("-", "")
    stripped = stripped.replace("e", "").replace("+", "").replace(" s", "")
    stripped = stripped.replace(" ms", "").replace("x", "")
    return stripped.isdigit()


def results_dir() -> str:
    """Where benchmark reports are persisted (created on demand)."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )))
    path = os.path.join(here, "benchmarks", "results")
    os.makedirs(path, exist_ok=True)
    return path


def traces_dir() -> str:
    """Where trace artifacts (JSONL, Chrome traces) land (created on demand)."""
    path = os.path.join(results_dir(), "traces")
    os.makedirs(path, exist_ok=True)
    return path


def persist_report(name: str, text: str) -> str:
    """Write a report under benchmarks/results/ and echo it to stdout."""
    path = os.path.join(results_dir(), f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print("\n" + text)
    return path
