"""Shared workload configuration for the benchmark suite.

``REPRO_BENCH_SCALE`` (default 0) doubles every dataset's vertex count
per increment, letting the same harness run laptop-quick or overnight-
thorough.  ``REPRO_BENCH_PARALLELISM`` sets the simulated cluster width
(default 4, matching the paper's four machines).
"""

from __future__ import annotations

import os

from repro.graphs import load_dataset

#: datasets used by the PageRank comparison (Figure 7); the paper used
#: Wikipedia, Webbase, Twitter
PAGERANK_DATASETS = ("wikipedia", "webbase", "twitter")

#: datasets used by the Connected Components comparison (Figure 9)
CC_DATASETS = ("wikipedia", "hollywood", "twitter", "webbase")


def bench_scale() -> int:
    return int(os.environ.get("REPRO_BENCH_SCALE", "0"))


def bench_parallelism() -> int:
    return int(os.environ.get("REPRO_BENCH_PARALLELISM", "4"))


def graph(name: str):
    return load_dataset(name, scale=bench_scale())
