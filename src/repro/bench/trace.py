"""``python -m repro.bench trace <workload>``: traced runs + profile report.

Runs one workload with tracing and invariant checking force-enabled on
each requested backend, then:

* writes the JSONL event log and the Chrome-trace JSON
  (``chrome://tracing`` / https://ui.perfetto.dev) under
  ``benchmarks/results/traces/``;
* prints a per-phase profile — self time, share of wall time, records
  processed and throughput, remote shipments, wire bytes, cache
  behavior — computed from the merged span tree;
* asserts that all backends produced *structurally identical* span
  trees: same names, same nesting, same logical counter deltas
  (timestamps and physical quantities excluded) — the trace-level
  analogue of the differential audit's counter equality.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro import ExecutionEnvironment
from repro.algorithms import connected_components as cc
from repro.algorithms import pagerank as pr
from repro.bench.reporting import (
    format_seconds,
    render_table,
    traces_dir,
)
from repro.common.errors import InvariantViolation
from repro.graphs import erdos_renyi
from repro.observability import (
    LOGICAL_SPAN_COUNTERS,
    operator_profile,
    write_chrome_trace,
    write_jsonl,
)
from repro.runtime.config import RuntimeConfig


def _cc(variant, mode):
    def runner(env, graph):
        return cc.cc_incremental(env, graph, variant=variant, mode=mode)
    return runner


#: workload name -> runner(env, graph) -> result
WORKLOADS = {
    "connected_components": _cc("cogroup", "superstep"),
    "cc_microstep": _cc("match", "microstep"),
    "cc_async": _cc("match", "async"),
    "cc_bulk": lambda env, graph: cc.cc_bulk(env, graph, 10_000),
    "pagerank": lambda env, graph: pr.pagerank_bulk(env, graph, 8),
}


@dataclass
class TraceRun:
    """One traced (workload, backend) execution and its artifacts."""

    backend: str
    wall_s: float
    spans: int
    supersteps: int
    structure: tuple
    profile: dict
    result: object
    jsonl_path: str | None = None
    chrome_path: str | None = None
    #: fabric transport totals from the run's telemetry registry
    #: (zero on the simulated backend — nothing crosses processes)
    frames_shm: int = 0
    frames_inline: int = 0
    inline_fallbacks: int = 0


@dataclass
class TraceResult:
    workload: str
    runs: list[TraceRun] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_on_failure(self):
        if self.failures:
            raise InvariantViolation(
                f"trace comparison failed for {self.workload}:\n  "
                + "\n  ".join(self.failures)
            )
        return self

    def report(self) -> str:
        blocks = []
        for run in self.runs:
            rows = [
                [
                    row["name"],
                    row["count"],
                    format_seconds(row["self_s"]),
                    f"{row['share']:.1%}",
                    row["processed"],
                    f"{row['records_per_s']:,.0f}",
                    row["shipped_remote"],
                    row["bytes_shipped"],
                    f"{row['cache_hits']}/{row['cache_builds']}",
                    row["records_spilled"],
                    row["bytes_spilled"],
                ]
                for row in run.profile["rows"][:12]
            ]
            blocks.append(render_table(
                f"Trace profile — {self.workload} on {run.backend} "
                f"({run.spans} spans, {run.supersteps} supersteps, "
                f"{format_seconds(run.wall_s)})",
                ["phase", "count", "self", "share", "processed", "rec/s",
                 "remote", "bytes", "cache h/b", "spilled", "spill B"],
                rows,
            ))
            blocks.append(
                f"fabric: {run.frames_shm} shm frames, "
                f"{run.frames_inline} inline, "
                f"{run.inline_fallbacks} inline fallbacks"
            )
            artifacts = [p for p in (run.jsonl_path, run.chrome_path) if p]
            if artifacts:
                blocks.append("artifacts:\n" + "\n".join(
                    f"  {path}" for path in artifacts
                ))
        if self.ok:
            backends = ", ".join(run.backend for run in self.runs)
            blocks.append(
                f"Span trees of [{backends}] are structurally identical: "
                "same names, nesting, and logical counter deltas."
            )
        else:
            blocks.append("FAILURES:\n" + "\n".join(
                f"  {f}" for f in self.failures
            ))
        return "\n\n".join(blocks)


def _comparable_result(result):
    """Order-insensitive projection of a workload result."""
    if isinstance(result, dict):
        return sorted(result.items())
    return result


def run(workload: str = "connected_components",
        backends=("simulated", "multiprocess"), seed: int = 7,
        num_vertices: int = 120, avg_degree: float = 2.5,
        parallelism: int = 4, save: bool = True) -> TraceResult:
    """Trace ``workload`` on every backend; compare the span trees.

    ``save`` writes the JSONL event log and the Chrome-trace JSON under
    ``benchmarks/results/traces/`` (the acceptance artifacts); the text
    report is returned either way.
    """
    if workload not in WORKLOADS:
        raise ValueError(
            f"unknown trace workload {workload!r}; available: "
            f"{', '.join(sorted(WORKLOADS))}"
        )
    runner = WORKLOADS[workload]
    graph = erdos_renyi(num_vertices, avg_degree, seed=seed)
    out = TraceResult(workload=workload)
    baseline = None
    for backend in backends:
        # telemetry rides along: the registry feeds the shm-ring report
        # line and the Chrome trace's counter tracks, and adds no spans,
        # so the cross-backend structure comparison is unaffected
        env = ExecutionEnvironment(
            parallelism, backend=backend,
            config=RuntimeConfig(
                check_invariants=True, trace=True, telemetry=True,
            ),
        )
        started = time.perf_counter()
        result = runner(env, graph)
        wall_s = time.perf_counter() - started
        # closes the loop: totals attribution + the trace law (span
        # forest closed, superstep spans reconcile with iteration_log)
        env.metrics.verify_invariants()
        structure = env.tracer.structure(LOGICAL_SPAN_COUNTERS)
        jsonl_path = chrome_path = None
        if save:
            stem = os.path.join(
                traces_dir(), f"TRACE_{workload}.{env.backend.name}"
            )
            meta = {
                "workload": workload,
                "backend": env.backend.name,
                "seed": seed,
                "num_vertices": num_vertices,
                "parallelism": parallelism,
            }
            jsonl_path = write_jsonl(
                stem + ".jsonl", env.trace_timelines, meta=meta
            )
            chrome_path = write_chrome_trace(
                stem + ".chrome.json", env.trace_timelines,
                series=env.telemetry.series,
            )
        run_record = TraceRun(
            backend=env.backend.name,
            wall_s=wall_s,
            spans=sum(1 for _ in env.tracer.iter_spans()),
            supersteps=env.metrics.supersteps,
            structure=structure,
            profile=operator_profile(env.tracer),
            result=_comparable_result(result),
            jsonl_path=jsonl_path,
            chrome_path=chrome_path,
            frames_shm=int(env.telemetry.total("fabric.frames_shm")),
            frames_inline=int(env.telemetry.total("fabric.frames_inline")),
            inline_fallbacks=int(
                env.telemetry.total("fabric.inline_fallbacks")
            ),
        )
        out.runs.append(run_record)
        if baseline is None:
            baseline = run_record
            continue
        if run_record.result != baseline.result:
            out.failures.append(
                f"results differ between the {run_record.backend} and "
                f"{baseline.backend} backends"
            )
        if run_record.structure != baseline.structure:
            out.failures.append(
                f"span trees differ between the {run_record.backend} and "
                f"{baseline.backend} backends (names, nesting, or logical "
                "counter deltas)"
            )
    return out
