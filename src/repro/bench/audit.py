"""Differential audit: cross-engine result equality + counter invariants.

The benchmark figures compare *engines* on *logical counters*; both
halves deserve machine checking.  This mode runs Connected Components
and PageRank on every engine over seeded random graphs with invariant
checking force-enabled, then asserts:

* **result equality** — every CC engine matches union-find ground truth
  exactly; every PageRank engine matches the numpy power-iteration
  reference within float tolerance;
* **counter-invariant compliance** — each run completed with the
  conservation-law audit active (every ship, driver call, barrier, and
  delta application checked), and the per-superstep counter attribution
  sums to the global totals;
* **cross-engine accounting sanity** — for every run,
  ``local + remote`` shipped totals and superstep balance held (these
  raise during the run if violated);
* **cross-backend equality** — with ``backends=("simulated",
  "multiprocess")`` every engine additionally runs on real worker
  processes, and both the *results* and the *logical counters*
  (records processed/shipped, solution accesses/updates, the whole
  per-superstep iteration log) must be identical to the simulator's,
  bit for bit.  Physical counters that legitimately differ (bytes on
  the wire, cache builds replicated per worker, wall-clock) are
  excluded from the comparison.

Run it via ``python -m repro.bench audit``, ``make verify-invariants``,
or the ``verify_invariants``-marked pytest tests.  It is the
fixture that makes counter bugfixes verifiable: re-introducing a known
accounting bug (the ``apply_record`` probe undercount, the
``_ship_hash`` locality mislabel) fails this audit instead of silently
skewing Figures 2/7/9.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro import ExecutionEnvironment
from repro.algorithms import connected_components as cc
from repro.algorithms import pagerank as pr
from repro.bench.reporting import render_table
from repro.cluster import resolve_backend
from repro.common.errors import InvariantViolation
from repro.graphs import erdos_renyi
from repro.runtime.config import RuntimeConfig
from repro.runtime.invariants import attach_checker
from repro.runtime.metrics import MetricsCollector
from repro.systems.sparklike import SparkLikeContext

#: per-engine PageRank agreement tolerance against the numpy reference
#: (engines sum float contributions in different orders)
PAGERANK_TOLERANCE = 1e-9

CHECKED = RuntimeConfig(check_invariants=True)


@dataclass
class EngineRun:
    """One audited (workload, engine, graph, backend) execution."""

    workload: str
    engine: str
    graph: str
    ok: bool
    detail: str
    backend: str = "simulated"
    ship_checks: int = 0
    messages: int = 0
    supersteps: int = 0


@dataclass
class AuditResult:
    runs: list[EngineRun] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_on_failure(self):
        if self.failures:
            raise InvariantViolation(
                "differential audit failed:\n  " + "\n  ".join(self.failures)
            )
        return self

    def report(self) -> str:
        backends = sorted({run.backend for run in self.runs})
        rows = [
            [run.workload, run.engine, run.graph, run.backend,
             "ok" if run.ok else "FAIL",
             run.ship_checks, run.messages, run.supersteps]
            for run in self.runs
        ]
        table = render_table(
            "Differential audit — cross-engine equality and counter "
            "invariants (checker active on every run)",
            ["workload", "engine", "graph", "backend", "result",
             "ship audits", "messages", "supersteps"],
            rows,
        )
        if self.ok:
            verdict = (
                f"All {len(self.runs)} runs: results agree across engines "
                "and every counter invariant held."
            )
            if len(backends) > 1:
                verdict += (
                    f" Backends ({', '.join(backends)}) produced identical "
                    "results and identical logical counters."
                )
        else:
            verdict = "FAILURES:\n" + "\n".join(
                f"  {f}" for f in self.failures
            )
        return table + "\n\n" + verdict


def _checked_env(parallelism: int, backend) -> ExecutionEnvironment:
    return ExecutionEnvironment(parallelism, config=CHECKED, backend=backend)


def _checked_metrics() -> MetricsCollector:
    metrics = MetricsCollector()
    attach_checker(metrics)
    return metrics


def _canonical_processed(counter) -> dict[str, int]:
    """Sum processed counts with auto-generated node ids stripped.

    Operator names carry globally unique node ids (``update#12``); two
    environments compiling the same program therefore disagree on the
    suffix even though the operators — and their counts — correspond
    one to one.  Comparing across backends (separate environments)
    needs the id-free projection.
    """
    totals: dict[str, int] = {}
    for name, count in counter.items():
        key = re.sub(r"#\d+", "", name)
        totals[key] = totals.get(key, 0) + count
    return totals


def _comparable_counters(metrics: MetricsCollector) -> dict:
    """The logical-counter projection that must match across backends.

    Deliberately excludes physical quantities: ``bytes_shipped`` (zero
    in-process, nonzero over pipes), ``cache_builds``/``cache_hits``
    (replicated drivers build per worker), ``duration_s``.
    """
    return {
        "records_processed": _canonical_processed(metrics.records_processed),
        "records_shipped_local": metrics.records_shipped_local,
        "records_shipped_remote": metrics.records_shipped_remote,
        "solution_accesses": metrics.solution_accesses,
        "solution_updates": metrics.solution_updates,
        "supersteps": metrics.supersteps,
        "iteration_log": [
            {
                "superstep": entry.superstep,
                "workset_size": entry.workset_size,
                "delta_size": entry.delta_size,
                "records_processed": entry.records_processed,
                "records_shipped_local": entry.records_shipped_local,
                "records_shipped_remote": entry.records_shipped_remote,
                "solution_accesses": entry.solution_accesses,
                "solution_updates": entry.solution_updates,
            }
            for entry in metrics.iteration_log
        ],
    }


def _cc_engines(parallelism, backend, max_iterations=10_000):
    """(engine name, runner(graph) -> (result, metrics)) for every engine."""
    def stratosphere(variant, mode):
        def run(graph):
            env = _checked_env(parallelism, backend)
            result = cc.cc_incremental(
                env, graph, variant=variant, mode=mode,
                max_iterations=max_iterations,
            )
            return result, env.metrics
        return run

    def bulk(graph):
        env = _checked_env(parallelism, backend)
        return cc.cc_bulk(env, graph, max_iterations), env.metrics

    def sparklike(graph):
        def program(cluster):
            ctx = SparkLikeContext(parallelism, config=CHECKED,
                                   cluster=cluster)
            result = cc.cc_sparklike(ctx, graph, max_iterations)
            ctx.metrics.verify_invariants()
            return result, ctx.metrics
        return backend.run_program(program, parallelism)

    def sparklike_sim(graph):
        def program(cluster):
            ctx = SparkLikeContext(parallelism, config=CHECKED,
                                   cluster=cluster)
            result = cc.cc_sparklike_sim_incremental(
                ctx, graph, max_iterations
            )
            ctx.metrics.verify_invariants()
            return result, ctx.metrics
        return backend.run_program(program, parallelism)

    def pregel(graph):
        def program(cluster):
            metrics = _checked_metrics()
            result = cc.cc_pregel(graph, parallelism=parallelism,
                                  metrics=metrics, cluster=cluster)
            return result, metrics
        return backend.run_program(program, parallelism)

    return [
        ("Stratosphere Full", bulk),
        ("Stratosphere Incr.", stratosphere("cogroup", "superstep")),
        ("Stratosphere Micro", stratosphere("match", "microstep")),
        ("Stratosphere Async", stratosphere("match", "async")),
        ("Spark", sparklike),
        ("Spark Sim. Incr.", sparklike_sim),
        ("Giraph", pregel),
    ]


def _pagerank_engines(parallelism, iterations, backend):
    def bulk(plan):
        def run(graph):
            env = _checked_env(parallelism, backend)
            result = pr.pagerank_bulk(env, graph, iterations, plan=plan)
            return result, env.metrics
        return run

    def sparklike(graph):
        def program(cluster):
            ctx = SparkLikeContext(parallelism, config=CHECKED,
                                   cluster=cluster)
            result = pr.pagerank_sparklike(ctx, graph, iterations)
            ctx.metrics.verify_invariants()
            return result, ctx.metrics
        return backend.run_program(program, parallelism)

    def pregel(graph):
        def program(cluster):
            metrics = _checked_metrics()
            result = pr.pagerank_pregel(graph, iterations,
                                        parallelism=parallelism,
                                        metrics=metrics, cluster=cluster)
            return result, metrics
        return backend.run_program(program, parallelism)

    return [
        ("Stratosphere Part.", bulk("partition")),
        ("Stratosphere BC", bulk("broadcast")),
        ("Spark", sparklike),
        ("Giraph", pregel),
    ]


def _cross_backend_check(backend_name, result, metrics, key, baselines):
    """Compare this run against the first backend's run of the same key.

    Returns ``None`` when consistent (or when this backend *is* the
    baseline), else a failure detail string.
    """
    comparable = _comparable_counters(metrics)
    baseline = baselines.get(key)
    if baseline is None:
        baselines[key] = (backend_name, result, comparable)
        return None
    base_backend, base_result, base_counters = baseline
    if result != base_result:
        return (
            f"results differ between the {backend_name} and "
            f"{base_backend} backends"
        )
    for name, value in comparable.items():
        if value != base_counters[name]:
            return (
                f"logical counter {name!r} differs between the "
                f"{backend_name} ({value!r}) and {base_backend} "
                f"({base_counters[name]!r}) backends"
            )
    return None


def _audit_run(result_obj, workload, engine, graph_name, backend_name,
               runner, graph, compare, baselines):
    """Execute one engine under audit; record outcome and counters."""
    try:
        result, metrics = runner(graph)
        detail = compare(result)
        ok = detail is None
    except InvariantViolation as violation:
        ok, detail, metrics = False, f"invariant violated: {violation}", None
    if ok and metrics is not None:
        detail = _cross_backend_check(
            backend_name, result, metrics, (workload, engine, graph_name),
            baselines,
        )
        ok = detail is None
    checker = metrics.invariants if metrics is not None else None
    run = EngineRun(
        workload=workload,
        engine=engine,
        graph=graph_name,
        backend=backend_name,
        ok=ok,
        detail=detail or "ok",
        ship_checks=checker.ship_checks if checker is not None else 0,
        messages=metrics.records_shipped_remote if metrics else 0,
        supersteps=metrics.supersteps if metrics else 0,
    )
    result_obj.runs.append(run)
    if not ok:
        result_obj.failures.append(
            f"{workload}/{engine} on {graph_name} [{backend_name}]: {detail}"
        )
    if ok and checker is not None and checker.ship_checks == 0 \
            and engine != "Giraph":
        # Giraph routes messages itself (no shipping channel); every other
        # engine must have exercised the channel audit at least once
        result_obj.failures.append(
            f"{workload}/{engine} on {graph_name} [{backend_name}]: "
            "checker attached but no ship was audited — the audit layer "
            "is not wired in"
        )


def run(seeds=(7, 23), num_vertices: int = 160, avg_degree: float = 2.5,
        parallelism: int = 4, pagerank_iterations: int = 8,
        backends=("simulated",)) -> AuditResult:
    """Run the full differential audit; returns an :class:`AuditResult`.

    ``backends`` names the execution backends to audit (``"simulated"``,
    ``"multiprocess"``, or instances).  With more than one, every
    (workload, engine, graph) cell runs once per backend and the later
    backends must reproduce the first backend's results and logical
    counters exactly.
    """
    resolved = []
    for spec in backends:
        backend = resolve_backend(spec)
        resolved.append((backend.name, backend))

    result = AuditResult()
    baselines: dict[tuple, tuple] = {}
    for seed in seeds:
        graph = erdos_renyi(num_vertices, avg_degree, seed=seed)
        graph_name = f"er({num_vertices},{avg_degree},seed={seed})"

        truth = cc.cc_ground_truth(graph)

        def compare_cc(engine_result):
            if engine_result == truth:
                return None
            wrong = sum(
                1 for v, label in truth.items()
                if engine_result.get(v) != label
            )
            return f"CC labels disagree with union-find on {wrong} vertices"

        reference = pr.pagerank_reference(graph, pagerank_iterations)

        def compare_pr(engine_result):
            worst = max(
                abs(engine_result.get(v, 0.0) - rank)
                for v, rank in reference.items()
            )
            if worst <= PAGERANK_TOLERANCE:
                return None
            return (
                f"PageRank deviates from the reference by {worst:.3e} "
                f"(tolerance {PAGERANK_TOLERANCE:.0e})"
            )

        for backend_name, backend in resolved:
            for engine, runner in _cc_engines(parallelism, backend):
                _audit_run(result, "CC", engine, graph_name, backend_name,
                           runner, graph, compare_cc, baselines)

            for engine, runner in _pagerank_engines(parallelism,
                                                    pagerank_iterations,
                                                    backend):
                _audit_run(result, "PageRank", engine, graph_name,
                           backend_name, runner, graph, compare_pr,
                           baselines)
    return result
