"""Telemetry overhead gate: REPRO_TELEMETRY=1 must stay near-free.

Telemetry is opt-in precisely because observability must never tax the
default path; this benchmark bounds the tax on the *opt-in* path too.
It reruns the chain-fusion workloads — the 5-operator map/filter
pipeline and connected components as a delta iteration — once with
``RuntimeConfig(telemetry=True)`` and once without, back to back in
each round, and takes the median of the per-round CPU-time ratios
(see :func:`_measure` for why pairing and CPU time are what make a 5%
bound measurable at all):

* **pipeline** (gating) — a forward job with no iteration.  Telemetry
  instruments superstep boundaries and spill/fabric events, none of
  which fire here, so any measured slowdown is pure attachment cost;
  the gate fails if the ratio exceeds ``OVERHEAD_CEILING`` (5%).
* **cc delta iteration** (reporting) — every superstep pays the live
  hooks: a duration-histogram observation, an RSS read, and the
  registry's residency/spill probes.  Reported so a hook regression is
  visible, but not gated — fewer rounds fit the time budget, so its
  estimate is coarser.

Both modes must collect identical results: telemetry that changes
answers is a bug regardless of speed.  The JSON artifact lands in
``benchmarks/results/BENCH_telemetry_overhead.json``.
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import time
from dataclasses import dataclass, field

from repro.bench.experiments.chaining import _cc_chained, _pipeline
from repro.bench.reporting import (
    bench_meta,
    format_quantity,
    render_table,
    results_dir,
)
from repro.graphs.generators import erdos_renyi
from repro.runtime.config import RuntimeConfig

ARTIFACT = "BENCH_telemetry_overhead.json"

#: gating rows fail if telemetry-on wall clock exceeds this multiple of
#: the telemetry-off median
OVERHEAD_CEILING = 1.05


@dataclass
class TelemetryOverheadResult:
    records: int
    cc_vertices: int
    cc_edges: int
    parallelism: int
    rounds: int
    rows: list[dict] = field(default_factory=list)
    ok: bool = True
    artifact_path: str = ""

    def report(self) -> str:
        table_rows = [
            [row["workload"],
             format_quantity(row["records"]),
             f"{row['off_s'] * 1000:.0f} ms",
             f"{row['on_s'] * 1000:.0f} ms",
             f"{row['ratio']:.3f}x",
             ("yes" if row["ratio"] <= OVERHEAD_CEILING else "NO")
             if row["gating"] else "-"]
            for row in self.rows
        ]
        table = render_table(
            f"Telemetry overhead — REPRO_TELEMETRY=1 vs off "
            f"(parallelism={self.parallelism}, median of {self.rounds})",
            ["workload", "records", "off cpu", "on cpu",
             "ratio", f"<={OVERHEAD_CEILING:.2f}x"],
            table_rows,
        )
        verdict = (
            "OK: telemetry stays within the "
            f"{(OVERHEAD_CEILING - 1) * 100:.0f}% overhead ceiling."
            if self.ok else
            "FAIL: telemetry slowed the gating workload beyond "
            f"{(OVERHEAD_CEILING - 1) * 100:.0f}% (or modes disagreed)."
        )
        return table + "\n\n" + verdict + f"\nArtifact: {self.artifact_path}"


def _environment(parallelism: int, telemetry: bool):
    from repro.dataflow.environment import ExecutionEnvironment
    return ExecutionEnvironment(
        parallelism=parallelism,
        config=RuntimeConfig(
            check_invariants=False, trace=False, telemetry=telemetry,
        ),
    )


def _run_pipeline(records: int, parallelism: int, telemetry: bool):
    env = _environment(parallelism, telemetry)
    out = _pipeline(env, records)
    gc.collect()
    started = time.process_time()
    result = env.collect(out)
    return time.process_time() - started, result


def _run_cc(graph, parallelism: int, telemetry: bool):
    env = _environment(parallelism, telemetry)
    out = _cc_chained(env, graph)
    gc.collect()
    started = time.process_time()
    result = sorted(env.collect(out))
    return time.process_time() - started, result


def _measure(bench, rounds: int):
    """Median of paired on/off CPU-time ratios plus a result check.

    A 5% bound is far below this host's run-to-run wall-clock noise
    (allocator and cache state drift across rounds), so two defenses:
    CPU time instead of wall clock (the simulated backend runs
    in-process, so ``process_time`` captures all the work while
    ignoring scheduler preemption), and *paired* ratios — each round
    runs both modes back to back (order alternating) and contributes
    one on/off ratio, so the slow drift that dominates the variance
    cancels within each pair.  The median over rounds is the estimate.
    """
    bench(True)  # warm both modes before timing
    bench(False)
    ratios, on_times, off_times = [], [], []
    on_result = off_result = None
    for index in range(rounds):
        if index % 2 == 0:
            on_s, on_result = bench(True)
            off_s, off_result = bench(False)
        else:
            off_s, off_result = bench(False)
            on_s, on_result = bench(True)
        on_times.append(on_s)
        off_times.append(off_s)
        ratios.append(on_s / off_s if off_s > 0 else float("inf"))
    return (
        statistics.median(on_times),
        statistics.median(off_times),
        statistics.median(ratios),
        sorted(on_result) == sorted(off_result),
    )


def run(records: int = 500_000, cc_vertices: int = 10_000,
        cc_avg_degree: float = 4.0, parallelism: int = 4, rounds: int = 12,
        save_artifact: bool = True) -> TelemetryOverheadResult:
    graph = erdos_renyi(cc_vertices, cc_avg_degree, seed=17,
                        name="telemetry_overhead")
    result = TelemetryOverheadResult(
        records=records,
        cc_vertices=graph.num_vertices,
        cc_edges=graph.num_edges,
        parallelism=parallelism,
        rounds=rounds,
    )

    cases = [
        ("pipeline (5-op map/filter)", True, records, rounds,
         lambda on: _run_pipeline(records, parallelism, on)),
        ("cc delta iteration", False,
         graph.num_vertices + graph.num_edges, max(3, rounds // 2),
         lambda on: _run_cc(graph, parallelism, on)),
    ]
    for name, gating, size, case_rounds, bench in cases:
        on_s, off_s, ratio, agree = _measure(bench, case_rounds)
        result.rows.append({
            "workload": name,
            "gating": gating,
            "records": size,
            "on_s": on_s,
            "off_s": off_s,
            "ratio": ratio,
            "results_agree": agree,
        })
        if not agree:
            result.ok = False
        if gating and ratio > OVERHEAD_CEILING:
            result.ok = False

    if save_artifact:
        payload = {
            "experiment": "telemetry_overhead",
            "meta": bench_meta(
                backend="simulated",
                parallelism=parallelism,
                rounds=rounds,
                telemetry="on-vs-off",
            ),
            "records": records,
            "cc_vertices": result.cc_vertices,
            "cc_edges": result.cc_edges,
            "parallelism": parallelism,
            "rounds": rounds,
            "overhead_ceiling": OVERHEAD_CEILING,
            "ok": result.ok,
            "note": (
                "Identical plans through the public API; only "
                "RuntimeConfig.telemetry differs.  on_s/off_s are "
                "median per-round CPU times; ratio is the median of "
                "per-round paired on/off CPU ratios (pairing cancels "
                "the allocator/cache drift that dominates wall-clock "
                "variance).  The gating (non-iterative) row must stay "
                "within the ceiling and both modes must collect "
                "identical results; the cc row reports the "
                "per-superstep hook cost without gating it."
            ),
            "rows": result.rows,
        }
        path = os.path.join(results_dir(), ARTIFACT)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        result.artifact_path = path
    return result
