"""Figure 4: the optimizer derives both PageRank execution plans.

The paper shows two hand-tuned Hadoop implementations (Mahout's
broadcast plan, Pegasus's repartition plan) falling out of one dataflow
program automatically, depending on the size statistics.  This
experiment feeds the same PageRank program through the optimizer under
small-vector and large-vector statistics and reports the chosen
shipping strategies and estimated costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import ExecutionEnvironment
from repro.bench.reporting import render_table
from repro.dataflow.contracts import Contract
from repro.dataflow.graph import LogicalNode, LogicalPlan
from repro.optimizer import optimize_plan
from repro.runtime.plan import ShipKind


def _pagerank_plan(env, vector_size, matrix_size):
    ranks = env.from_iterable([(i, 1.0) for i in range(min(vector_size, 50))],
                              name="p").with_estimated_size(vector_size)
    matrix = env.from_iterable(
        [(0, 0, 0.1)], name="A"
    ).with_estimated_size(matrix_size)
    iteration = env.iterate_bulk(ranks, max_iterations=20, name="pagerank")
    joined = iteration.partial_solution.join(
        matrix, 0, 1, lambda r, a: (a[0], r[1] * a[2]), name="join_p_A"
    ).with_forwarded_fields({0: 0}, input_index=1)
    summed = joined.reduce_by_key(
        0, lambda a, b: (a[0], a[1] + b[1]), name="sum_ranks"
    ).with_forwarded_fields({0: 0, 1: 1}).with_estimated_size(vector_size)
    result = iteration.close(summed)
    sink = LogicalNode(Contract.SINK, [result.node])
    exec_plan = optimize_plan(LogicalPlan([sink]).validate(), env)
    return exec_plan, joined.node, summed.node


@dataclass
class PlanChoice:
    scenario: str
    vector_size: int
    matrix_size: int
    rank_ship: str
    matrix_ship: str
    reduce_ship: str
    estimated_cost: float

    @property
    def classified(self) -> str:
        if self.rank_ship == "broadcast":
            return "broadcast plan (Fig. 4 left / Mahout)"
        return "repartition plan (Fig. 4 right / Pegasus)"


@dataclass
class Fig4Result:
    choices: list

    def report(self) -> str:
        rows = [
            [c.scenario, c.vector_size, c.matrix_size, c.rank_ship,
             c.matrix_ship, c.reduce_ship, f"{c.estimated_cost:.3g}",
             c.classified]
            for c in self.choices
        ]
        table = render_table(
            "Figure 4 — optimizer plan choice for PageRank by statistics",
            ["scenario", "|p|", "|A|", "ship p", "ship A", "ship contribs",
             "est. cost", "classification"],
            rows,
        )
        shape = (
            "Shape check (paper: small models -> broadcast plan, large "
            "models -> repartition plan):\n"
            f"  small-vector choice: {self.choices[0].classified}\n"
            f"  large-vector choice: {self.choices[1].classified}\n"
            "  note: under the broadcast plan our combiner-aware model may\n"
            "  ship the (tiny) combined contributions instead of\n"
            "  pre-partitioning A on tid; both variants make the\n"
            "  aggregation's traffic negligible, which is the plan's point."
        )
        return table + "\n\n" + shape


def run() -> Fig4Result:
    scenarios = [
        ("small vector", 100, 200_000),
        ("large vector", 200_000, 400_000),
    ]
    choices = []
    for label, vec, mat in scenarios:
        env = ExecutionEnvironment(4)
        exec_plan, join_node, reduce_node = _pagerank_plan(env, vec, mat)
        join_ann = exec_plan.annotations[join_node.id]
        reduce_ann = exec_plan.annotations[reduce_node.id]
        choices.append(PlanChoice(
            scenario=label,
            vector_size=vec,
            matrix_size=mat,
            rank_ship=join_ann.ship[0].describe(),
            matrix_ship=join_ann.ship[1].describe(),
            reduce_ship=reduce_ann.ship[0].describe(),
            estimated_cost=exec_plan.estimated_cost,
        ))
    return Fig4Result(choices)
