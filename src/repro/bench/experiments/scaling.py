"""Backend scaling: multiprocess workers vs the in-process simulator.

Runs bulk PageRank on the largest seeded dataset (``twitter``) at
increasing worker counts, on both execution backends, and records wall
clocks plus the speedup curve relative to one multiprocess worker.
At every width the multiprocess result must equal the simulator's
bit for bit (the backends share partitioning, so the float-sum orders
match).

Honesty note: the host's CPU count is recorded in the artifact.  On a
single-core host the worker processes time-share one core, so the
curve measures serialization + scheduling overhead, not parallel
speedup — monotonic scaling is physically impossible there and the
numbers should be read accordingly (see EXPERIMENTS.md).

The JSON artifact lands in ``benchmarks/results/BENCH_backend_scaling.json``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from repro import ExecutionEnvironment
from repro.algorithms import pagerank as pr
from repro.bench.reporting import (
    format_seconds,
    render_table,
    results_dir,
)
from repro.bench.workloads import graph

ARTIFACT = "BENCH_backend_scaling.json"


@dataclass
class ScalingResult:
    dataset: str
    num_vertices: int
    num_edges: int
    iterations: int
    host_cpus: int
    rows: list[dict] = field(default_factory=list)
    artifact_path: str = ""

    def report(self) -> str:
        table_rows = [
            [row["workers"],
             format_seconds(row["simulated_s"]),
             format_seconds(row["multiprocess_s"]),
             f"{row['speedup_vs_1_worker']:.2f}x",
             "yes" if row["results_match"] else "NO"]
            for row in self.rows
        ]
        table = render_table(
            f"Backend scaling — PageRank({self.iterations} it.) on "
            f"{self.dataset} ({self.num_vertices} vertices, "
            f"{self.num_edges} edges), host_cpus={self.host_cpus}",
            ["workers", "simulated", "multiprocess",
             "speedup vs 1 worker", "results identical"],
            table_rows,
        )
        notes = [
            f"Artifact: {self.artifact_path}",
        ]
        if self.host_cpus < max(row["workers"] for row in self.rows):
            notes.append(
                f"Caveat: host has {self.host_cpus} CPU(s) — workers "
                "beyond that time-share cores, so this curve measures "
                "IPC/serialization overhead, not parallel speedup."
            )
        return table + "\n\n" + "\n".join(notes)


def _time_run(env_factory, graph_obj, iterations):
    env = env_factory()
    started = time.perf_counter()
    result = pr.pagerank_bulk(env, graph_obj, iterations, plan="partition")
    return time.perf_counter() - started, result


def run(dataset: str = "twitter", iterations: int = 4,
        worker_counts=(1, 2, 4, 8), save_artifact: bool = True
        ) -> ScalingResult:
    g = graph(dataset)
    host_cpus = os.cpu_count() or 1
    result = ScalingResult(
        dataset=dataset,
        num_vertices=g.num_vertices,
        num_edges=g.num_edges,
        iterations=iterations,
        host_cpus=host_cpus,
    )

    base_multiprocess_s = None
    for workers in worker_counts:
        simulated_s, simulated = _time_run(
            lambda: ExecutionEnvironment(workers, backend="simulated"),
            g, iterations,
        )
        multiprocess_s, multiprocess = _time_run(
            lambda: ExecutionEnvironment(workers, backend="multiprocess"),
            g, iterations,
        )
        if base_multiprocess_s is None:
            base_multiprocess_s = multiprocess_s
        result.rows.append({
            "workers": workers,
            "simulated_s": simulated_s,
            "multiprocess_s": multiprocess_s,
            "speedup_vs_1_worker": base_multiprocess_s / multiprocess_s,
            "results_match": simulated == multiprocess,
        })

    if save_artifact:
        payload = {
            "experiment": "backend_scaling",
            "dataset": dataset,
            "num_vertices": result.num_vertices,
            "num_edges": result.num_edges,
            "pagerank_iterations": iterations,
            "host_cpus": host_cpus,
            "note": (
                "wall clocks on a host with fewer CPUs than workers "
                "measure serialization/scheduling overhead, not parallel "
                "speedup; results_match asserts bitwise equality between "
                "the multiprocess and simulated backends at each width"
            ),
            "rows": result.rows,
        }
        path = os.path.join(results_dir(), ARTIFACT)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        result.artifact_path = path
    return result
