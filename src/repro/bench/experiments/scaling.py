"""Backend scaling: multiprocess and pool workers vs the simulator.

Runs bulk PageRank on the largest seeded dataset (``twitter``) at
increasing worker counts on all three execution backends, and records
wall clocks plus speedup curves relative to one worker.  At every width
every backend's result must equal the simulator's bit for bit (the
backends share partitioning, so the float-sum orders match).

The **pool** backend is measured twice: a *cold* run whose wall clock
includes forking the pool, and a *warm* run on the already-running pool
— the regime the persistent pool exists for (one pool serves many
jobs).  The warm curve is the one the monotone-speedup gate judges.

Honesty notes:

* The host's CPU count is recorded, and every row where ``workers``
  exceeds ``host_cpus`` is marked ``oversubscribed: true`` — worker
  processes time-sharing cores measure serialization + scheduling
  overhead, not parallel speedup, so monotonic scaling is physically
  impossible there.  The gate (:attr:`ScalingResult.ok`) applies the
  monotone-speedup requirement **only to non-oversubscribed rows**; a
  single-core host yields a vacuous gate, not a misleading red/green.
* Earlier revisions reported ``speedup_vs_1_worker`` from a
  ``host_cpus: 1`` machine as if it measured scaling; the flag exists
  so no reader (or CI job) repeats that mistake.

The JSON artifact lands in ``benchmarks/results/BENCH_backend_scaling.json``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from repro import ExecutionEnvironment
from repro.algorithms import pagerank as pr
from repro.bench.reporting import (
    bench_meta,
    format_seconds,
    render_table,
    results_dir,
)
from repro.bench.workloads import graph

ARTIFACT = "BENCH_backend_scaling.json"

#: tolerated per-step jitter in the monotone warm-pool speedup gate:
#: each non-oversubscribed row must keep at least this fraction of the
#: previous non-oversubscribed row's speedup
MONOTONE_TOLERANCE = 0.9


@dataclass
class ScalingResult:
    dataset: str
    num_vertices: int
    num_edges: int
    iterations: int
    host_cpus: int
    rows: list[dict] = field(default_factory=list)
    artifact_path: str = ""

    @property
    def gated_rows(self) -> list[dict]:
        """The rows the monotone-speedup gate applies to."""
        return [row for row in self.rows if not row["oversubscribed"]]

    @property
    def monotone_ok(self) -> bool:
        """Warm-pool speedup non-decreasing over non-oversubscribed rows.

        Oversubscribed rows (``workers > host_cpus``) are excluded: they
        time-share cores and cannot scale.  Vacuously true when every
        multi-worker row is oversubscribed (e.g. a single-core host).
        """
        previous = None
        for row in self.gated_rows:
            speedup = row["pool_warm_speedup_vs_1_worker"]
            if previous is not None and speedup < previous * MONOTONE_TOLERANCE:
                return False
            previous = speedup
        return True

    @property
    def ok(self) -> bool:
        return (
            all(row["results_match"] for row in self.rows)
            and self.monotone_ok
        )

    def report(self) -> str:
        table_rows = [
            [row["workers"],
             format_seconds(row["simulated_s"]),
             format_seconds(row["multiprocess_s"]),
             format_seconds(row["pool_s"]),
             format_seconds(row["pool_warm_s"]),
             f"{row['pool_warm_speedup_vs_1_worker']:.2f}x",
             "yes" if row["oversubscribed"] else "no",
             "yes" if row["results_match"] else "NO"]
            for row in self.rows
        ]
        table = render_table(
            f"Backend scaling — PageRank({self.iterations} it.) on "
            f"{self.dataset} ({self.num_vertices} vertices, "
            f"{self.num_edges} edges), host_cpus={self.host_cpus}",
            ["workers", "simulated", "multiprocess", "pool (cold)",
             "pool (warm)", "warm speedup vs 1", "oversub.",
             "results identical"],
            table_rows,
        )
        notes = [
            f"Artifact: {self.artifact_path}",
        ]
        oversubscribed = [r["workers"] for r in self.rows
                          if r["oversubscribed"]]
        if oversubscribed:
            notes.append(
                f"Caveat: host has {self.host_cpus} CPU(s) — rows at "
                f"{oversubscribed} workers are oversubscribed (cores "
                "time-shared), so their wall clocks measure IPC/"
                "serialization overhead, not parallel speedup; the "
                "monotone-speedup gate skips them."
            )
        gated = [r["workers"] for r in self.gated_rows]
        notes.append(
            "Monotone warm-pool speedup gate over non-oversubscribed "
            f"rows {gated}: {'ok' if self.monotone_ok else 'FAILED'}."
        )
        return table + "\n\n" + "\n".join(notes)


def _time_run(env_factory, graph_obj, iterations):
    env = env_factory()
    started = time.perf_counter()
    result = pr.pagerank_bulk(env, graph_obj, iterations, plan="partition")
    return time.perf_counter() - started, result


def run(dataset: str = "twitter", iterations: int = 4,
        worker_counts=(1, 2, 4, 8), save_artifact: bool = True
        ) -> ScalingResult:
    from repro.cluster.pool import PoolBackend

    g = graph(dataset)
    host_cpus = os.cpu_count() or 1
    result = ScalingResult(
        dataset=dataset,
        num_vertices=g.num_vertices,
        num_edges=g.num_edges,
        iterations=iterations,
        host_cpus=host_cpus,
    )

    base = {}
    for workers in worker_counts:
        simulated_s, simulated = _time_run(
            lambda: ExecutionEnvironment(workers, backend="simulated"),
            g, iterations,
        )
        multiprocess_s, multiprocess = _time_run(
            lambda: ExecutionEnvironment(workers, backend="multiprocess"),
            g, iterations,
        )
        # one persistent pool serves both pool measurements: the cold
        # run pays the fork, the warm run measures the steady state
        pool_backend = PoolBackend()
        try:
            pool_s, pool_cold = _time_run(
                lambda: ExecutionEnvironment(workers, backend=pool_backend),
                g, iterations,
            )
            pool_warm_s, pool_warm = _time_run(
                lambda: ExecutionEnvironment(workers, backend=pool_backend),
                g, iterations,
            )
        finally:
            pool_backend.close()
        for name, seconds in (("multiprocess", multiprocess_s),
                              ("pool", pool_s), ("pool_warm", pool_warm_s)):
            base.setdefault(name, seconds)
        result.rows.append({
            "workers": workers,
            "simulated_s": simulated_s,
            "multiprocess_s": multiprocess_s,
            "pool_s": pool_s,
            "pool_warm_s": pool_warm_s,
            "speedup_vs_1_worker": base["multiprocess"] / multiprocess_s,
            "pool_speedup_vs_1_worker": base["pool"] / pool_s,
            "pool_warm_speedup_vs_1_worker": base["pool_warm"] / pool_warm_s,
            "oversubscribed": workers > host_cpus,
            "results_match": (
                simulated == multiprocess == pool_cold == pool_warm
            ),
        })

    if save_artifact:
        payload = {
            "experiment": "backend_scaling",
            "meta": bench_meta(
                backend="simulated+multiprocess+pool",
                worker_counts=list(worker_counts),
                pagerank_iterations=iterations,
            ),
            "dataset": dataset,
            "num_vertices": result.num_vertices,
            "num_edges": result.num_edges,
            "pagerank_iterations": iterations,
            "host_cpus": host_cpus,
            "monotone_ok": result.monotone_ok,
            "note": (
                "rows with oversubscribed=true have more workers than "
                "host CPUs: their wall clocks measure serialization/"
                "scheduling overhead, not parallel speedup, and the "
                "monotone-speedup gate excludes them; pool_warm_s times "
                "a job on an already-running pool (the persistent-pool "
                "steady state); results_match asserts bitwise equality "
                "across simulated, multiprocess, and pool backends at "
                "each width"
            ),
            "rows": result.rows,
        }
        path = os.path.join(results_dir(), ARTIFACT)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        result.artifact_path = path
    return result
