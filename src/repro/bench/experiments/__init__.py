"""One module per paper artifact (table/figure); see DESIGN.md §4."""
