"""Data-plane microbenchmark: batched vs record-at-a-time framing.

Exercises the three hot primitives of the batched data plane — the
hash-partition ship, the hash-join build/probe, and the hash
aggregation — on the connected-components reference workload (an
Erdős–Rényi graph's vertex-label and edge datasets), once with the
session's configured ``RuntimeConfig.batch_size`` and once with the
degenerate ``batch_size=1`` record-at-a-time framing.  Both runs take
the *same* code path; only the chunk bound differs, so the measured gap
is purely the per-batch overhead (``RecordBatch`` construction, the
key/hash vector setup, per-chunk invariant hooks) amortized — or not —
over the records of each chunk.

The run fails (``ok=False``, nonzero exit under ``python -m
repro.bench dataplane``) if the batched ship or join throughput falls
below 2x the per-record path: that regression would mean the batch
substrate no longer pays for itself.

A second section measures the columnar v2 data plane against the row
loops on **columnar-resident** partitions — column-born
:class:`~repro.common.batch.RecordBatch` inputs, the form frames take
after crossing the shm fabric or a spill file.  This is the regime the
struct-of-arrays layout exists for: the columnar kernels (the
hash-scatter's vectorized grouping, the join's ``searchsorted``
build/probe, the sort-aggregate's ``argsort``) read the column buffers
directly, while the row loops must first transpose every chunk back
into tuple records.  Both modes run the *same* driver entry points on
freshly built column-born inputs each round (construction is excluded
from the timing; fresh inputs keep one mode's lazily-materialized
caches from subsidizing the other).  The run fails if the **median**
columnar speedup across the three primitives falls below
``COLUMNAR_SPEEDUP_FLOOR`` — the median, not the minimum, because the
aggregate's per-group fold is irreducibly record-at-a-time and only
its sort vectorizes.

The JSON artifact lands in ``benchmarks/results/BENCH_dataplane.json``.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from dataclasses import dataclass, field

from repro.bench.reporting import (
    bench_meta,
    format_quantity,
    render_table,
    results_dir,
)
from repro.common import columns as columns_mod
from repro.common.batch import RecordBatch
from repro.graphs.generators import erdos_renyi
from repro.runtime import channels, drivers
from repro.runtime.config import RuntimeConfig
from repro.runtime.metrics import MetricsCollector
from repro.runtime.plan import partition_on

ARTIFACT = "BENCH_dataplane.json"

#: batched throughput below this multiple of the record-at-a-time path
#: fails the benchmark
SPEEDUP_FLOOR = 2.0

#: the median columnar-over-row speedup across ship/join/aggregate must
#: clear this floor for the run to pass
COLUMNAR_SPEEDUP_FLOOR = 1.5


@dataclass
class DataplaneResult:
    num_vertices: int
    num_edges: int
    parallelism: int
    batch_size: int
    rounds: int
    rows: list[dict] = field(default_factory=list)
    columnar_rows: list[dict] = field(default_factory=list)
    columnar_median: float = 0.0
    ok: bool = True
    artifact_path: str = ""

    def report(self) -> str:
        table_rows = [
            [row["primitive"],
             format_quantity(row["records"]),
             f"{format_quantity(row['batched_rps'])}/s",
             f"{format_quantity(row['per_record_rps'])}/s",
             f"{row['speedup']:.2f}x",
             "yes" if not row["gating"] or row["speedup"] >= SPEEDUP_FLOOR
             else "NO"]
            for row in self.rows
        ]
        table = render_table(
            f"Data plane — batch_size={self.batch_size} vs 1 on CC "
            f"workload ({self.num_vertices} vertices, "
            f"{self.num_edges} edges, parallelism={self.parallelism})",
            ["primitive", "records", "batched", "per-record", "speedup",
             f">={SPEEDUP_FLOOR:.0f}x"],
            table_rows,
        )
        columnar_table = render_table(
            f"Columnar v2 vs row loops — batch_size={self.batch_size}, "
            f"median floor {COLUMNAR_SPEEDUP_FLOOR:.1f}x",
            ["primitive", "records", "columnar", "row", "speedup"],
            [
                [row["primitive"],
                 format_quantity(row["records"]),
                 f"{format_quantity(row['columnar_rps'])}/s",
                 f"{format_quantity(row['row_rps'])}/s",
                 f"{row['speedup']:.2f}x"]
                for row in self.columnar_rows
            ],
        )
        verdict = (
            "OK: batched ship and join clear the "
            f"{SPEEDUP_FLOOR:.0f}x throughput floor and the columnar "
            f"plane's median speedup is {self.columnar_median:.2f}x "
            f"(floor {COLUMNAR_SPEEDUP_FLOOR:.1f}x)."
            if self.ok else
            "FAIL: batched throughput fell below "
            f"{SPEEDUP_FLOOR:.0f}x the record-at-a-time path, or the "
            f"columnar median speedup ({self.columnar_median:.2f}x) "
            f"fell below {COLUMNAR_SPEEDUP_FLOOR:.1f}x."
        )
        return (table + "\n\n" + columnar_table + "\n\n" + verdict
                + f"\nArtifact: {self.artifact_path}")


class _Node:
    """Minimal driver-facing operator stub (name, keys, UDF)."""

    def __init__(self, name, key_fields, udf):
        self.name = name
        self.key_fields = key_fields
        self.udf = udf
        self.flat = False


def _partition(records, parallelism):
    parts = [[] for _ in range(parallelism)]
    for index, record in enumerate(records):
        parts[index % parallelism].append(record)
    return parts


def _time(fn, rounds):
    started = time.perf_counter()
    for _ in range(rounds):
        fn()
    return time.perf_counter() - started


def _bench_ship(edge_parts, parallelism, rounds, batch_size):
    strategy = partition_on((0,))

    def one_round():
        channels.ship(edge_parts, strategy, parallelism,
                      batch_size=batch_size)
    return _time(one_round, rounds)


def _bench_join(vertex_parts, edge_parts, rounds, batch_size):
    # CC's candidate step: label(v) joined onto the out-edges of v
    node = _Node("dataplane:join", ((0,), (0,)),
                 lambda vertex, edge: (edge[1], vertex[1]))
    metrics = MetricsCollector()

    def one_round():
        for vpart, epart in zip(vertex_parts, edge_parts):
            drivers.run_hash_join(node, [vpart, epart], metrics,
                                  build_left=True, batch_size=batch_size)
    return _time(one_round, rounds)


def _columnar_parts(parts, key_fields=(0,)):
    """Transpose row partitions into fresh column-born batches.

    This is the shape partitions have on the columnar data plane after
    crossing the shm fabric or a spill file: struct-of-arrays buffers,
    rows not yet materialized.  Called once per timed round so neither
    mode inherits the other's lazily-built row/key caches.
    """
    out = []
    for part in parts:
        _arity, cols = columns_mod.columnarize(list(part))
        out.append(RecordBatch.from_columns(len(part), cols, key_fields))
    return out


def _time_columnar(make_inputs, one_round, rounds):
    """Time ``rounds`` calls, rebuilding inputs outside the clock."""
    total = 0.0
    for _ in range(rounds):
        inputs = make_inputs()
        started = time.perf_counter()
        one_round(inputs)
        total += time.perf_counter() - started
    return total


def _bench_ship_columnar(edge_parts, parallelism, rounds, batch_size,
                         columnar):
    strategy = partition_on((0,))

    def one_round(parts):
        channels.ship(parts, strategy, parallelism,
                      batch_size=batch_size, columnar=columnar)
    return _time_columnar(
        lambda: _columnar_parts(edge_parts), one_round, rounds
    )


def _bench_join_columnar(vertex_parts, edge_parts, rounds, batch_size,
                         columnar):
    node = _Node("dataplane:join", ((0,), (0,)),
                 lambda vertex, edge: (edge[1], vertex[1]))
    metrics = MetricsCollector()

    def one_round(inputs):
        for vpart, epart in zip(*inputs):
            drivers.run_hash_join(node, [vpart, epart], metrics,
                                  build_left=True, batch_size=batch_size,
                                  columnar=columnar)
    return _time_columnar(
        lambda: (_columnar_parts(vertex_parts), _columnar_parts(edge_parts)),
        one_round, rounds,
    )


def _bench_aggregate(candidate_parts, rounds, batch_size):
    # CC's update step: keep the minimum candidate label per vertex
    node = _Node("dataplane:min_label", ((0,),),
                 lambda a, b: a if a[1] <= b[1] else b)
    metrics = MetricsCollector()

    def one_round():
        for part in candidate_parts:
            drivers.run_hash_aggregate(node, [part], metrics,
                                       batch_size=batch_size)
    return _time(one_round, rounds)


def _bench_sort_aggregate_columnar(candidate_parts, rounds, batch_size,
                                   columnar):
    # the aggregate whose sort vectorizes: key-sorted min-label runs
    node = _Node("dataplane:min_label_sorted", ((0,),),
                 lambda a, b: a if a[1] <= b[1] else b)
    metrics = MetricsCollector()

    def one_round(parts):
        for part in parts:
            drivers.run_sort_aggregate(node, [part], metrics,
                                       batch_size=batch_size,
                                       columnar=columnar)
    return _time_columnar(
        lambda: _columnar_parts(candidate_parts), one_round, rounds
    )


def _check_columnar_parity(edge_parts, parallelism, batch_size):
    """One untimed scatter both ways: same rows, and the columnar ship
    must actually take the column-at-a-time path (column-born output)."""
    strategy = partition_on((0,))
    row_out = channels.ship(_columnar_parts(edge_parts), strategy,
                            parallelism, batch_size=batch_size,
                            columnar=False)
    col_out = channels.ship(_columnar_parts(edge_parts), strategy,
                            parallelism, batch_size=batch_size,
                            columnar=True)
    if [list(p) for p in col_out] != [list(p) for p in row_out]:
        raise AssertionError("columnar scatter diverged from row scatter")
    if not any(
        isinstance(p, RecordBatch) and p.has_columns() for p in col_out
    ):
        raise AssertionError(
            "columnar ship fell back to the row loop on column-born input"
        )


def run(num_vertices: int = 3_000, avg_degree: float = 8.0,
        parallelism: int = 4, rounds: int = 3,
        save_artifact: bool = True) -> DataplaneResult:
    graph = erdos_renyi(num_vertices, avg_degree, seed=11, name="dataplane")
    edges = graph.edge_tuples()
    vertices = [(v, v) for v in range(graph.num_vertices)]
    edge_parts = _partition(edges, parallelism)
    vertex_parts = _partition(vertices, parallelism)

    # the join's output feeds the aggregation, as in the CC plan
    join_node = _Node("dataplane:join", ((0,), (0,)),
                      lambda vertex, edge: (edge[1], vertex[1]))
    warm_metrics = MetricsCollector()
    candidate_parts = [
        drivers.run_hash_join(join_node, [vpart, epart], warm_metrics,
                              build_left=True)
        for vpart, epart in zip(vertex_parts, edge_parts)
    ]
    num_candidates = sum(len(part) for part in candidate_parts)

    batch_size = RuntimeConfig().batch_size
    result = DataplaneResult(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        parallelism=parallelism,
        batch_size=batch_size,
        rounds=rounds,
    )

    cases = [
        ("ship(partition_hash)", True, len(edges),
         lambda bs: _bench_ship(edge_parts, parallelism, rounds, bs)),
        ("hash join", True, len(vertices) + len(edges),
         lambda bs: _bench_join(vertex_parts, edge_parts, rounds, bs)),
        ("hash aggregate", False, num_candidates,
         lambda bs: _bench_aggregate(candidate_parts, rounds, bs)),
    ]
    for name, gating, records_per_round, bench in cases:
        bench(batch_size)  # warm both paths before timing
        bench(1)
        batched_s = bench(batch_size)
        per_record_s = bench(1)
        records = records_per_round * rounds
        speedup = per_record_s / batched_s if batched_s > 0 else float("inf")
        result.rows.append({
            "primitive": name,
            "gating": gating,
            "records": records,
            "batched_s": batched_s,
            "per_record_s": per_record_s,
            "batched_rps": records / batched_s if batched_s > 0 else 0.0,
            "per_record_rps": (
                records / per_record_s if per_record_s > 0 else 0.0
            ),
            "speedup": speedup,
        })
        if gating and speedup < SPEEDUP_FLOOR:
            result.ok = False

    _check_columnar_parity(edge_parts, parallelism, batch_size)
    columnar_cases = [
        ("ship(partition_hash)", len(edges),
         lambda c: _bench_ship_columnar(edge_parts, parallelism, rounds,
                                        batch_size, c)),
        ("hash join", len(vertices) + len(edges),
         lambda c: _bench_join_columnar(vertex_parts, edge_parts, rounds,
                                        batch_size, c)),
        ("sort aggregate", num_candidates,
         lambda c: _bench_sort_aggregate_columnar(candidate_parts, rounds,
                                                  batch_size, c)),
    ]
    speedups = []
    for name, records_per_round, bench in columnar_cases:
        bench(True)  # warm both paths before timing
        bench(False)
        columnar_s = bench(True)
        row_s = bench(False)
        records = records_per_round * rounds
        speedup = row_s / columnar_s if columnar_s > 0 else float("inf")
        speedups.append(speedup)
        result.columnar_rows.append({
            "primitive": name,
            "records": records,
            "columnar_s": columnar_s,
            "row_s": row_s,
            "columnar_rps": records / columnar_s if columnar_s > 0 else 0.0,
            "row_rps": records / row_s if row_s > 0 else 0.0,
            "speedup": speedup,
        })
    result.columnar_median = statistics.median(speedups)
    if result.columnar_median < COLUMNAR_SPEEDUP_FLOOR:
        result.ok = False

    if save_artifact:
        payload = {
            "experiment": "dataplane",
            "meta": bench_meta(
                backend="drivers",
                batch_size=batch_size,
                parallelism=parallelism,
                rounds=rounds,
                layout="columnar+row",
            ),
            "workload": "connected-components reference (erdos_renyi)",
            "num_vertices": result.num_vertices,
            "num_edges": result.num_edges,
            "parallelism": parallelism,
            "rounds": rounds,
            "batch_size": batch_size,
            "speedup_floor": SPEEDUP_FLOOR,
            "columnar_speedup_floor": COLUMNAR_SPEEDUP_FLOOR,
            "columnar_median_speedup": result.columnar_median,
            "ok": result.ok,
            "note": (
                "batched and per-record runs share one code path; only "
                "the RecordBatch chunk bound differs (configured "
                "batch_size vs 1).  'gating' rows must clear the "
                "speedup floor for the run to pass.  'columnar_rows' "
                "compare the struct-of-arrays kernels against the row "
                "loops on the same drivers over columnar-resident "
                "(column-born) partitions — the form frames take after "
                "the shm fabric or a spill file; input construction is "
                "excluded from the timing.  Their median speedup must "
                "clear 'columnar_speedup_floor'."
            ),
            "rows": result.rows,
            "columnar_rows": result.columnar_rows,
        }
        path = os.path.join(results_dir(), ARTIFACT)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        result.artifact_path = path
    return result
