"""Table 1: the three iteration templates compute the same fixpoint.

Runs FIXPOINT-CC, INCR-CC, and MICRO-CC (plus the dataflow delta
iteration) on the same graph and reports result agreement and the work
profile of each template — the bulk template's state reads stay
constant per iteration while the incremental templates' shrink.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import ExecutionEnvironment
from repro.algorithms import connected_components as cc
from repro.bench.reporting import render_table
from repro.bench.workloads import bench_parallelism, graph


@dataclass
class TemplateRun:
    template: str
    agrees: bool
    work_metric: str


@dataclass
class Table1Result:
    dataset: str
    runs: list

    def report(self) -> str:
        rows = [
            [r.template, "yes" if r.agrees else "NO", r.work_metric]
            for r in self.runs
        ]
        return render_table(
            f"Table 1 — iteration templates on {self.dataset}: result "
            "agreement and work profile",
            ["template", "matches union-find", "work"],
            rows,
        )


def run(dataset: str = "foaf") -> Table1Result:
    g = graph(dataset)
    truth = cc.cc_ground_truth(g)

    runs = []
    fixpoint = cc.cc_fixpoint(g)
    # the bulk template reads every vertex's neighborhood every iteration
    runs.append(TemplateRun(
        "FIXPOINT-CC (bulk)", fixpoint == truth,
        f"state reads/iteration = {g.num_vertices + g.num_edges} (constant)",
    ))

    incr = cc.cc_incremental_reference(g)
    runs.append(TemplateRun(
        "INCR-CC (superstep workset)", incr == truth,
        "state reads/iteration = |workset| (shrinking)",
    ))

    micro = cc.cc_microstep_reference(g)
    runs.append(TemplateRun(
        "MICRO-CC (per-element)", micro == truth,
        "one state read per workset element",
    ))

    env = ExecutionEnvironment(bench_parallelism())
    dataflow = cc.cc_incremental(env, g, variant="match")
    runs.append(TemplateRun(
        "dataflow delta iteration (Sec. 5)", dataflow == truth,
        f"solution accesses = {env.metrics.solution_accesses}",
    ))
    return Table1Result(dataset, runs)
