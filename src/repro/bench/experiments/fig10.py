"""Figure 10: Connected Components on the huge-diameter Webbase graph.

The paper runs the incremental algorithm to full convergence (744
supersteps there) and shows per-iteration execution time and message
counts decaying by orders of magnitude, while the bulk algorithm —
extrapolated from its first 20 iterations — would need ~100× longer
(the famous ×75 speedup).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.reporting import format_seconds, render_table
from repro.bench.experiments.runners import run_cc_bulk, run_cc_incremental
from repro.bench.workloads import bench_parallelism, graph

BULK_SAMPLE_ITERATIONS = 20


@dataclass
class Fig10Result:
    incremental: object   # RunMeasurement, to convergence
    bulk_sample: object   # RunMeasurement, first 20 iterations

    @property
    def supersteps_to_converge(self) -> int:
        return self.incremental.iterations

    @property
    def bulk_extrapolated_seconds(self) -> float:
        per_iteration = self.bulk_sample.seconds / self.bulk_sample.iterations
        return per_iteration * self.supersteps_to_converge

    @property
    def speedup(self) -> float:
        return self.bulk_extrapolated_seconds / self.incremental.seconds

    def report(self) -> str:
        stats = self.incremental.per_iteration
        rows = []
        step = max(1, len(stats) // 40)  # sample the long series
        for s in stats[::step]:
            rows.append([
                s.superstep, f"{s.duration_s * 1000:.2f}", s.messages,
                s.workset_size, s.delta_size,
            ])
        table = render_table(
            "Figure 10 — CC per-iteration time and messages on webbase "
            "(incremental, to convergence; sampled rows)",
            ["iteration", "time (ms)", "messages", "workset", "changed"],
            rows,
        )
        head = stats[0]
        tail = stats[-2] if len(stats) > 1 else stats[-1]
        summary = "\n".join([
            "Shape check:",
            f"  converged after {self.supersteps_to_converge} supersteps",
            f"  incremental total: {format_seconds(self.incremental.seconds)}",
            f"  bulk first {self.bulk_sample.iterations} iterations: "
            f"{format_seconds(self.bulk_sample.seconds)}",
            f"  bulk extrapolated to convergence: "
            f"{format_seconds(self.bulk_extrapolated_seconds)}",
            f"  speedup (extrapolated bulk / incremental): x{self.speedup:.1f}",
            f"  workset decay: {head.workset_size} -> {tail.workset_size} "
            f"(first -> near-last superstep)",
        ])
        return table + "\n\n" + summary


def run(dataset: str = "webbase") -> Fig10Result:
    parallelism = bench_parallelism()
    g = graph(dataset)
    incremental = run_cc_incremental(g, parallelism)
    bulk_sample = run_cc_bulk(g, parallelism,
                              max_iterations=BULK_SAMPLE_ITERATIONS)
    return Fig10Result(incremental, bulk_sample)
