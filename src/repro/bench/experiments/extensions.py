"""Extension experiments beyond the paper's figures.

* ``run_adaptive_pagerank`` — Section 7.2's claim that adaptive
  PageRank [25] is natural as an incremental iteration: compares the
  work of the adaptive delta iteration against bulk PageRank at equal
  result quality.
* ``run_optimizer_ablation`` — the paper's optimizer (Section 4.3) vs
  the naive rule-based planner on the same PageRank program.
* ``run_modes_ablation`` — superstep vs microstep vs async execution of
  the identical Match-variant CC plan (Section 5.2/5.3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro import ExecutionEnvironment
from repro.algorithms import connected_components as cc
from repro.algorithms import pagerank as pr
from repro.bench.reporting import format_seconds, render_table
from repro.bench.workloads import bench_parallelism, graph


@dataclass
class SimpleReport:
    title: str
    headers: list
    rows: list
    shape: str = ""

    def report(self) -> str:
        text = render_table(self.title, self.headers, self.rows)
        if self.shape:
            text += "\n\n" + self.shape
        return text


def run_adaptive_pagerank(dataset: str = "wikipedia",
                          epsilon: float = 1e-7) -> SimpleReport:
    g = graph(dataset)
    parallelism = bench_parallelism()

    env_bulk = ExecutionEnvironment(parallelism)
    start = time.perf_counter()
    bulk = pr.pagerank_bulk(env_bulk, g, iterations=20)
    bulk_seconds = time.perf_counter() - start

    env_adapt = ExecutionEnvironment(parallelism)
    start = time.perf_counter()
    adaptive = pr.pagerank_adaptive(env_adapt, g, epsilon=epsilon)
    adaptive_seconds = time.perf_counter() - start

    deviation = max(
        abs(bulk[k] - adaptive.get(k, 0.0)) for k in bulk
    )
    rows = [
        ["bulk (20 iterations)", format_seconds(bulk_seconds),
         env_bulk.metrics.total_processed,
         env_bulk.metrics.records_shipped_remote],
        [f"adaptive (eps={epsilon:g})", format_seconds(adaptive_seconds),
         env_adapt.metrics.total_processed,
         env_adapt.metrics.records_shipped_remote],
    ]
    sizes = [s.workset_size for s in env_adapt.metrics.iteration_log]
    shape = (
        "Shape check (Sec. 7.2: converged pages stop propagating):\n"
        f"  adaptive workset decay: {sizes[0]} -> {sizes[-1]} over "
        f"{len(sizes)} supersteps\n"
        f"  max rank deviation between variants: {deviation:.2e}"
    )
    return SimpleReport(
        f"Extension — adaptive PageRank as an incremental iteration "
        f"({dataset})",
        ["variant", "time", "records processed", "messages"],
        rows, shape,
    )


def run_optimizer_ablation(dataset: str = "wikipedia") -> SimpleReport:
    g = graph(dataset)
    parallelism = bench_parallelism()
    rows = []
    seconds = {}
    for label, optimize in (("cost-based optimizer", True),
                            ("naive planner", False)):
        env = ExecutionEnvironment(parallelism, optimize=optimize)
        start = time.perf_counter()
        pr.pagerank_bulk(env, g, iterations=10)
        seconds[label] = time.perf_counter() - start
        rows.append([
            label, format_seconds(seconds[label]),
            env.metrics.records_shipped_remote,
            env.metrics.cache_hits,
        ])
    shape = (
        "Shape check: the optimizer should not lose to the naive planner\n"
        f"  time ratio naive/optimized = "
        f"{seconds['naive planner'] / seconds['cost-based optimizer']:.2f}"
    )
    return SimpleReport(
        f"Ablation — optimizer vs naive planner, PageRank on {dataset}",
        ["planner", "time", "messages", "cache hits"],
        rows, shape,
    )


def run_parallelism_scaling(dataset: str = "wikipedia",
                            widths=(1, 2, 4, 8)) -> SimpleReport:
    """How network traffic scales with cluster width per physical plan.

    Broadcast traffic grows ~linearly with the partition count while
    hash-partition traffic only approaches its (P-1)/P asymptote — the
    structural reason the optimizer's Figure-4 choice is also a function
    of the cluster size.
    """
    g = graph(dataset)
    rows = []
    for parallelism in widths:
        per_plan = {}
        for plan in ("broadcast", "partition"):
            env = ExecutionEnvironment(parallelism)
            pr.pagerank_bulk(env, g, iterations=4, plan=plan)
            steady = env.metrics.iteration_log[2]
            per_plan[plan] = steady.records_shipped_remote
        rows.append([
            parallelism, per_plan["broadcast"], per_plan["partition"],
            f"{per_plan['broadcast'] / max(per_plan['partition'], 1):.2f}",
        ])
    return SimpleReport(
        f"Extension — remote traffic per superstep vs cluster width "
        f"({dataset}, PageRank)",
        ["parallelism", "broadcast plan", "partition plan",
         "broadcast/partition"],
        rows,
        "Shape check: the broadcast plan's traffic grows ~(P-1)·|p|, "
        "outpacing the partition plan (vector shuffle saturates at "
        "(P-1)/P; only its combined-contribution term grows) — their "
        "ratio widens with the cluster.",
    )


def run_semi_naive_tc(num_vertices: int = 60, num_edges: int = 110,
                      seed: int = 17) -> SimpleReport:
    """Section 7.1: delta iterations evaluate recursion semi-naively.

    Transitive closure under naive (bulk) and semi-naive (delta)
    bottom-up evaluation: identical fixpoints, wildly different work.
    """
    import numpy as np
    from repro.algorithms import transitive_closure as tc

    rng = np.random.default_rng(seed)
    edges = list({
        (int(a), int(b))
        for a, b in zip(rng.integers(0, num_vertices, num_edges),
                        rng.integers(0, num_vertices, num_edges))
        if a != b
    })
    truth = tc.tc_reference(edges, num_vertices)

    rows = []
    results = {}
    for label, runner in (("naive (bulk iteration)", tc.tc_naive),
                          ("semi-naive (delta iteration)", tc.tc_semi_naive)):
        env = ExecutionEnvironment(bench_parallelism())
        start = time.perf_counter()
        results[label] = runner(env, edges)
        elapsed = time.perf_counter() - start
        rows.append([
            label, format_seconds(elapsed),
            env.iteration_summaries[0].supersteps,
            env.metrics.total_processed,
            env.metrics.records_shipped_remote,
            "yes" if results[label] == truth else "NO",
        ])
    return SimpleReport(
        f"Extension — naive vs semi-naive transitive closure "
        f"({num_vertices} vertices, {len(edges)} base facts, "
        f"{len(truth)} derived facts)",
        ["evaluation", "time", "supersteps", "records processed",
         "messages", "correct"],
        rows,
        "Shape check (Sec. 7.1): the delta iteration joins only the "
        "previous superstep's new facts — a semi-naive evaluator for free.",
    )


def run_modes_ablation(dataset: str = "wikipedia") -> SimpleReport:
    g = graph(dataset)
    parallelism = bench_parallelism()
    truth = cc.cc_ground_truth(g)
    rows = []
    for mode in ("superstep", "microstep", "async"):
        env = ExecutionEnvironment(parallelism)
        start = time.perf_counter()
        result = cc.cc_incremental(env, g, variant="match", mode=mode)
        elapsed = time.perf_counter() - start
        rows.append([
            mode, format_seconds(elapsed),
            len(env.metrics.iteration_log),
            env.metrics.solution_accesses,
            env.metrics.records_shipped_remote,
            "yes" if result == truth else "NO",
        ])
    return SimpleReport(
        f"Ablation — execution modes of the Match-variant CC on {dataset}",
        ["mode", "time", "supersteps/rounds", "solution accesses",
         "messages", "correct"],
        rows,
        "Shape check: all modes converge to the same fixpoint; async needs "
        "no barriers (rounds are polling sweeps, not supersteps).",
    )
