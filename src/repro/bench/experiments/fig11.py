"""Figure 11: per-iteration execution times for Connected Components.

Six configurations on the Wikipedia graph: Spark Full, Spark Simulated-
Incremental, Giraph, Stratosphere Full / Micro / Incr.  Expected shapes:
bulk variants stay flat; the incremental variants decay towards a very
low per-iteration floor; the simulated-incremental Spark variant decays
but plateaus much higher because it copies all unchanged state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.reporting import render_table
from repro.bench.experiments.runners import (
    run_cc_bulk,
    run_cc_incremental,
    run_cc_micro,
    run_cc_pregel,
    run_cc_sparklike,
    run_cc_sparklike_sim,
)
from repro.bench.workloads import bench_parallelism, graph


@dataclass
class Fig11Result:
    measurements: list

    def report(self) -> str:
        iterations = max(len(m.per_iteration) for m in self.measurements)
        headers = ["iteration"] + [m.system for m in self.measurements]
        rows = []
        for i in range(iterations):
            row = [i + 1]
            for m in self.measurements:
                if i < len(m.per_iteration):
                    row.append(f"{m.per_iteration[i].duration_s * 1000:.1f}")
                else:
                    row.append("-")
            rows.append(row)
        table = render_table(
            "Figure 11 — CC per-iteration time on wikipedia (ms)",
            headers, rows,
        )
        return table + "\n\n" + self._shape_summary()

    def _shape_summary(self) -> str:
        lines = ["Shape check (late-iteration time as fraction of first):"]
        for m in self.measurements:
            times = m.iteration_seconds
            if len(times) < 4:
                continue
            late = min(times[3:])
            lines.append(
                f"  {m.system}: first={times[0]*1000:.1f} ms, "
                f"best-late={late*1000:.1f} ms, decay x{times[0]/max(late,1e-9):.1f}"
            )
        lines.append(
            "  (paper: bulk variants flat; incremental variants decay by "
            "orders of magnitude; Spark Sim. Incr. decays but plateaus high)"
        )
        return "\n".join(lines)


def run(dataset: str = "wikipedia") -> Fig11Result:
    parallelism = bench_parallelism()
    g = graph(dataset)
    measurements = [
        run_cc_sparklike(g, parallelism),
        run_cc_sparklike_sim(g, parallelism),
        run_cc_pregel(g, parallelism),
        run_cc_bulk(g, parallelism),
        run_cc_micro(g, parallelism),
        run_cc_incremental(g, parallelism),
    ]
    return Fig11Result(measurements)
