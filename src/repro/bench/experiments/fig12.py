"""Figure 12: correlation between execution time and messages.

The paper overlays per-iteration times and workset/message counts for
the bulk, batch-incremental (CoGroup), and microstep (Match) variants
on the Wikipedia graph: time is near-linear in the number of candidate
messages, with the bulk and CoGroup variants sharing a slope and the
Match variant showing a distinctly lower slope (its per-candidate
update is cheaper, so it can chew through larger, more redundant
worksets in the same time).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.reporting import render_table
from repro.bench.experiments.runners import (
    run_cc_bulk,
    run_cc_incremental,
    run_cc_micro,
)
from repro.bench.workloads import bench_parallelism, graph


@dataclass
class VariantSeries:
    system: str
    times_ms: list
    messages: list

    @property
    def slope_us_per_message(self) -> float:
        """Least-squares slope of time over messages (µs per message)."""
        x = np.array(self.messages, dtype=float)
        y = np.array(self.times_ms, dtype=float) * 1000.0  # µs
        if len(x) < 2 or x.std() == 0:
            return float("nan")
        slope = np.polyfit(x, y, 1)[0]
        return float(slope)

    @property
    def correlation(self) -> float:
        x = np.array(self.messages, dtype=float)
        y = np.array(self.times_ms, dtype=float)
        if len(x) < 2 or x.std() == 0 or y.std() == 0:
            return float("nan")
        return float(np.corrcoef(x, y)[0, 1])


@dataclass
class Fig12Result:
    series: list

    def report(self) -> str:
        iterations = max(len(s.times_ms) for s in self.series)
        headers = ["iteration"]
        for s in self.series:
            headers += [f"{s.system} ms", f"{s.system} msgs"]
        rows = []
        for i in range(iterations):
            row = [i + 1]
            for s in self.series:
                if i < len(s.times_ms):
                    row += [f"{s.times_ms[i]:.1f}", s.messages[i]]
                else:
                    row += ["-", "-"]
            rows.append(row)
        table = render_table(
            "Figure 12 — per-iteration time vs messages on wikipedia",
            headers, rows,
        )
        def fmt(value):
            return "n/a (constant workload)" if value != value else f"{value:.2f}"

        fits = render_table(
            "Linear fits (time ≈ slope · messages)",
            ["variant", "slope (µs/message)", "correlation"],
            [
                [s.system, fmt(s.slope_us_per_message),
                 fmt(s.correlation)]
                for s in self.series
            ],
        )
        micro = next(s for s in self.series if "Micro" in s.system)
        incr = next(s for s in self.series if "Incr" in s.system)
        shape = (
            "Shape check (paper: bulk's workload is constant per iteration "
            "— a point cluster on the fitted line of the CoGroup variant; "
            "the Match/microstep slope is much lower):\n"
            f"  micro slope / incr slope = "
            f"{micro.slope_us_per_message / incr.slope_us_per_message:.2f}"
        )
        return table + "\n\n" + fits + "\n\n" + shape


def run(dataset: str = "wikipedia") -> Fig12Result:
    parallelism = bench_parallelism()
    g = graph(dataset)
    series = []
    for measurement in (
        run_cc_bulk(g, parallelism),
        run_cc_incremental(g, parallelism),
        run_cc_micro(g, parallelism),
    ):
        # per-iteration candidate volume: processed workset entries for
        # the incremental variants, propagated candidates for bulk
        messages = [
            s.workset_size if s.workset_size else s.records_processed
            for s in measurement.per_iteration
        ]
        series.append(VariantSeries(
            system=measurement.system,
            times_ms=[s.duration_s * 1000 for s in measurement.per_iteration],
            messages=messages,
        ))
    return Fig12Result(series)
