"""Shared measured runners: one function per (system, algorithm).

Every runner executes one full algorithm run on a fresh engine and
returns a :class:`RunMeasurement` with wall time, per-iteration stats,
and logical counters.  The figure modules compose these.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import ExecutionEnvironment
from repro.algorithms import connected_components as cc
from repro.algorithms import pagerank as pr
from repro.systems.sparklike import SparkLikeContext


@dataclass
class RunMeasurement:
    system: str
    dataset: str
    seconds: float
    iterations: int
    messages: int
    records_processed: int
    per_iteration: list = field(default_factory=list)  # IterationStats
    result: dict = None

    @property
    def iteration_seconds(self) -> list[float]:
        return [s.duration_s for s in self.per_iteration]


def _measure(system, dataset, metrics, fn):
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    return RunMeasurement(
        system=system,
        dataset=dataset,
        seconds=elapsed,
        iterations=len(metrics.iteration_log),
        messages=metrics.records_shipped_remote,
        records_processed=metrics.total_processed,
        per_iteration=list(metrics.iteration_log),
        result=result,
    )


# ----------------------------------------------------------------------
# PageRank runners (Figures 7, 8)


def run_pagerank_sparklike(graph, iterations, parallelism):
    ctx = SparkLikeContext(parallelism)
    return _measure(
        "Spark", graph.name, ctx.metrics,
        lambda: pr.pagerank_sparklike(ctx, graph, iterations),
    )


def run_pagerank_pregel(graph, iterations, parallelism):
    from repro.runtime.metrics import MetricsCollector
    metrics = MetricsCollector()
    return _measure(
        "Giraph", graph.name, metrics,
        lambda: pr.pagerank_pregel(graph, iterations,
                                   parallelism=parallelism, metrics=metrics),
    )


def run_pagerank_stratosphere(graph, iterations, parallelism, plan):
    env = ExecutionEnvironment(parallelism)
    label = "Stratosphere Part." if plan == "partition" else "Stratosphere BC"
    return _measure(
        label, graph.name, env.metrics,
        lambda: pr.pagerank_bulk(env, graph, iterations, plan=plan),
    )


PAGERANK_RUNNERS = {
    "Spark": run_pagerank_sparklike,
    "Giraph": run_pagerank_pregel,
    "Stratosphere Part.": lambda g, i, p: run_pagerank_stratosphere(
        g, i, p, "partition"),
    "Stratosphere BC": lambda g, i, p: run_pagerank_stratosphere(
        g, i, p, "broadcast"),
}


# ----------------------------------------------------------------------
# Connected Components runners (Figures 9, 10, 11, 12)


def run_cc_sparklike(graph, parallelism, max_iterations=1_000):
    ctx = SparkLikeContext(parallelism)
    return _measure(
        "Spark", graph.name, ctx.metrics,
        lambda: cc.cc_sparklike(ctx, graph, max_iterations),
    )


def run_cc_sparklike_sim(graph, parallelism, max_iterations=1_000):
    ctx = SparkLikeContext(parallelism)
    return _measure(
        "Spark Sim. Incr.", graph.name, ctx.metrics,
        lambda: cc.cc_sparklike_sim_incremental(ctx, graph, max_iterations),
    )


def run_cc_pregel(graph, parallelism, max_iterations=1_000_000):
    from repro.runtime.metrics import MetricsCollector
    metrics = MetricsCollector()
    return _measure(
        "Giraph", graph.name, metrics,
        lambda: cc.cc_pregel(graph, parallelism=parallelism, metrics=metrics,
                             max_supersteps=max_iterations),
    )


def run_cc_bulk(graph, parallelism, max_iterations=1_000):
    env = ExecutionEnvironment(parallelism)
    return _measure(
        "Stratosphere Full", graph.name, env.metrics,
        lambda: cc.cc_bulk(env, graph, max_iterations),
    )


def run_cc_micro(graph, parallelism, max_iterations=100_000):
    env = ExecutionEnvironment(parallelism)
    return _measure(
        "Stratosphere Micro", graph.name, env.metrics,
        lambda: cc.cc_incremental(env, graph, variant="match",
                                  mode="microstep",
                                  max_iterations=max_iterations),
    )


def run_cc_incremental(graph, parallelism, max_iterations=100_000):
    env = ExecutionEnvironment(parallelism)
    return _measure(
        "Stratosphere Incr.", graph.name, env.metrics,
        lambda: cc.cc_incremental(env, graph, variant="cogroup",
                                  mode="superstep",
                                  max_iterations=max_iterations),
    )


CC_RUNNERS = {
    "Spark": run_cc_sparklike,
    "Giraph": run_cc_pregel,
    "Stratosphere Full": run_cc_bulk,
    "Stratosphere Micro": run_cc_micro,
    "Stratosphere Incr.": run_cc_incremental,
}
