"""Figure 7: total execution times for PageRank across systems.

The paper runs 20 PageRank iterations on Wikipedia, Webbase, and
Twitter with Spark, Giraph, and Stratosphere's partitioning and
broadcasting plans, expecting roughly equal runtimes per dataset
because every system performs the same per-iteration work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.reporting import format_seconds, render_table
from repro.bench.experiments.runners import PAGERANK_RUNNERS
from repro.bench.workloads import PAGERANK_DATASETS, bench_parallelism, graph


@dataclass
class Fig7Result:
    measurements: list  # RunMeasurement

    def report(self) -> str:
        rows = [
            [m.dataset, m.system, format_seconds(m.seconds),
             m.messages, m.records_processed]
            for m in self.measurements
        ]
        table = render_table(
            "Figure 7 — PageRank total execution time (20 iterations)",
            ["dataset", "system", "time", "messages", "records processed"],
            rows,
        )
        return table + "\n\n" + self._shape_summary()

    def _shape_summary(self) -> str:
        lines = ["Shape check (paper: systems within small factors per dataset):"]
        by_dataset: dict[str, list] = {}
        for m in self.measurements:
            by_dataset.setdefault(m.dataset, []).append(m)
        for dataset, ms in by_dataset.items():
            fastest = min(ms, key=lambda m: m.seconds)
            slowest = max(ms, key=lambda m: m.seconds)
            ratio = slowest.seconds / fastest.seconds
            lines.append(
                f"  {dataset}: fastest={fastest.system}, "
                f"slowest={slowest.system}, spread x{ratio:.2f}"
            )
        return "\n".join(lines)


def run(iterations: int = 20, datasets=PAGERANK_DATASETS,
        systems=None) -> Fig7Result:
    parallelism = bench_parallelism()
    systems = systems or list(PAGERANK_RUNNERS)
    measurements = []
    for name in datasets:
        g = graph(name)
        for system in systems:
            runner = PAGERANK_RUNNERS[system]
            measurements.append(runner(g, iterations, parallelism))
    return Fig7Result(measurements)
