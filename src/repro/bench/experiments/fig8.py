"""Figure 8: per-iteration execution times for PageRank on Wikipedia.

The paper plots the individual iteration times of Spark, Giraph, and
Stratosphere (partitioning plan): constant iteration times with a
longer first iteration (constant-path execution / setup).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.reporting import render_table
from repro.bench.experiments.runners import (
    run_pagerank_pregel,
    run_pagerank_sparklike,
    run_pagerank_stratosphere,
)
from repro.bench.workloads import bench_parallelism, graph


@dataclass
class Fig8Result:
    measurements: list

    def report(self) -> str:
        iterations = max(len(m.per_iteration) for m in self.measurements)
        headers = ["iteration"] + [m.system for m in self.measurements]
        rows = []
        for i in range(iterations):
            row = [i + 1]
            for m in self.measurements:
                if i < len(m.per_iteration):
                    row.append(f"{m.per_iteration[i].duration_s * 1000:.1f}")
                else:
                    row.append("-")
            rows.append(row)
        table = render_table(
            "Figure 8 — PageRank per-iteration time on wikipedia (ms)",
            headers, rows,
        )
        return table + "\n\n" + self._shape_summary()

    def _shape_summary(self) -> str:
        lines = ["Shape check (paper: iteration times flat; first iteration "
                 "longer due to the constant data path):"]
        for m in self.measurements:
            times = m.iteration_seconds
            if len(times) < 3:
                continue
            steady = times[1:]
            spread = max(steady) / max(min(steady), 1e-9)
            first_vs_steady = times[0] / (sum(steady) / len(steady))
            lines.append(
                f"  {m.system}: steady-state spread x{spread:.2f}, "
                f"first iteration x{first_vs_steady:.2f} of steady mean"
            )
        return "\n".join(lines)


def run(iterations: int = 20, dataset: str = "wikipedia") -> Fig8Result:
    parallelism = bench_parallelism()
    g = graph(dataset)
    measurements = [
        run_pagerank_sparklike(g, iterations, parallelism),
        run_pagerank_pregel(g, iterations, parallelism),
        run_pagerank_stratosphere(g, iterations, parallelism, "partition"),
    ]
    return Fig8Result(measurements)
