"""Figure 9: total execution times for Connected Components.

Five configurations — Spark (bulk), Giraph, Stratosphere Full (bulk),
Stratosphere Micro (Match variant), Stratosphere Incr. (CoGroup
variant) — on the four datasets.  Following the paper, the huge-diameter
Webbase graph is capped at 20 supersteps for *all* variants here
("Webbase (20)"); Figure 10 runs it to convergence.

Expected shapes: incremental variants beat the bulk variants by growing
factors as the graph's convergence is more skewed (×2 wikipedia →
×5.3 twitter in the paper); on the dense Hollywood graph the batch-
incremental CoGroup variant beats the per-record Match variant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.reporting import format_seconds, render_table
from repro.bench.experiments.runners import CC_RUNNERS
from repro.bench.workloads import CC_DATASETS, bench_parallelism, graph

WEBBASE_CAP = 20


@dataclass
class Fig9Result:
    measurements: list

    def report(self) -> str:
        rows = [
            [m.dataset, m.system, format_seconds(m.seconds), m.iterations,
             m.messages]
            for m in self.measurements
        ]
        table = render_table(
            "Figure 9 — Connected Components total execution time",
            ["dataset", "system", "time", "supersteps", "messages"],
            rows,
        )
        return table + "\n\n" + self._shape_summary()

    def _time(self, dataset, system):
        for m in self.measurements:
            if m.dataset == dataset and m.system == system:
                return m.seconds
        return float("nan")

    def _shape_summary(self) -> str:
        lines = ["Shape check:"]
        datasets = {m.dataset for m in self.measurements}
        for dataset in sorted(datasets):
            bulk = self._time(dataset, "Stratosphere Full")
            incr = self._time(dataset, "Stratosphere Incr.")
            micro = self._time(dataset, "Stratosphere Micro")
            best_incr = min(incr, micro)
            lines.append(
                f"  {dataset}: incremental speedup over bulk "
                f"x{bulk / best_incr:.2f} "
                f"(micro {format_seconds(micro)}, incr {format_seconds(incr)})"
            )
        if "hollywood" in datasets:
            lines.append(
                "  hollywood (dense): CoGroup vs Match ratio "
                f"{self._time('hollywood', 'Stratosphere Micro') / self._time('hollywood', 'Stratosphere Incr.'):.2f}"
                " (paper: batch-incremental ~30% faster)"
            )
        return "\n".join(lines)


def run(datasets=CC_DATASETS, systems=None) -> Fig9Result:
    parallelism = bench_parallelism()
    systems = systems or list(CC_RUNNERS)
    measurements = []
    for name in datasets:
        g = graph(name)
        cap = WEBBASE_CAP if name == "webbase" else 1_000
        for system in systems:
            runner = CC_RUNNERS[system]
            measurements.append(runner(g, parallelism, max_iterations=cap))
    return Fig9Result(measurements)
