"""Optimizer-v2 microbenchmark: pushdown and adaptive re-optimization.

Two workloads, both end-to-end through the public environment API:

* **pushdown** (gates on wall-clock) — a highly selective filter
  (keeps ~1%) sitting on a large equi-join whose probe side
  identity-forwards the filtered fields.  With the read fields declared
  (``fields=(1,)``) the optimizer evaluates the predicate below the
  ship, so ~99% of the probe side pays neither network nor probe cost;
  without the declaration the same predicate runs post-join over the
  full join output.  The two programs differ only in that one line of
  metadata and must collect identical results.
* **adaptive rescue** (gates on wire bytes) — connected components over
  a bundle of long paths, *forced* onto a static broadcast-probe plan
  (the plan a stale cardinality estimate would pick).  Long paths keep
  the workset large for the whole run — exactly the trajectory where a
  broadcast probe is maximally wrong.  With ``RuntimeConfig.adaptive``
  on, the executor measures the workset at each superstep boundary and
  switches the probe edge to partition-hash at the crossover; with
  adaptivity off the broadcast plan runs to convergence.  The row runs
  on the **multiprocess** backend and gates on the reduction in
  serialized bytes put on the wire — the paper's cost model is
  network-dominated, and that is where a ship-strategy switch pays.
  Wall-clock is reported but not gated: in this pure-Python runtime the
  switch's invisibility machinery (origin tagging, deterministic
  re-assembly) costs about what the saved hash-table misses buy back,
  so the wall-clock ratio hovers around 1x while the wire volume drops
  by ~2x.  Results must be bitwise equal and at least one
  ``plan_switch`` must fire.

The run fails (``ok=False``, nonzero exit under ``python -m repro.bench
optimizer``) if a gating metric falls below ``SPEEDUP_FLOOR``, if the
adaptive row fails to switch, or if any row's two modes disagree on the
collected results.

The JSON artifact lands in ``benchmarks/results/BENCH_optimizer.json``.
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import time
from dataclasses import dataclass, field

from repro.bench.reporting import (
    bench_meta,
    format_quantity,
    render_table,
    results_dir,
)
from repro.runtime.config import RuntimeConfig

ARTIFACT = "BENCH_optimizer.json"

#: each row's gating metric (wall-clock speedup for pushdown, wire-byte
#: ratio for the adaptive rescue) must reach this multiple
SPEEDUP_FLOOR = 1.3


@dataclass
class OptimizerBenchResult:
    join_left: int
    join_right: int
    cc_vertices: int
    cc_edges: int
    parallelism: int
    rounds: int
    rows: list[dict] = field(default_factory=list)
    ok: bool = True
    artifact_path: str = ""

    def report(self) -> str:
        table_rows = [
            [row["workload"],
             format_quantity(row["records"]),
             f"{row['optimized_s'] * 1000:.0f} ms",
             f"{row['baseline_s'] * 1000:.0f} ms",
             f"{row['speedup']:.2f}x",
             (f"{row['bytes_ratio']:.2f}x"
              if row["bytes_ratio"] is not None else "-"),
             "yes" if row["gate_value"] >= SPEEDUP_FLOOR else "NO"]
            for row in self.rows
        ]
        table = render_table(
            f"Optimizer v2 — rewrites on vs off "
            f"(parallelism={self.parallelism}, median of {self.rounds})",
            ["workload", "records", "v2", "baseline", "speedup",
             "bytes saved", f"gate>={SPEEDUP_FLOOR:.1f}x"],
            table_rows,
        )
        verdict = (
            "OK: pushdown clears the wall-clock floor and the adaptive "
            "switch clears the wire-byte floor with bitwise-equal results."
            if self.ok else
            "FAIL: a gating metric fell below the floor, the adaptive "
            "switch did not fire, or modes disagreed."
        )
        return table + "\n\n" + verdict + f"\nArtifact: {self.artifact_path}"


def _environment(parallelism: int, adaptive: bool = True,
                 backend: str = "simulated"):
    from repro.dataflow.environment import ExecutionEnvironment
    return ExecutionEnvironment(
        parallelism=parallelism,
        backend=backend,
        config=RuntimeConfig(
            check_invariants=False, trace=False, adaptive=adaptive,
        ),
    )


# ----------------------------------------------------------------------
# row 1: selective filter over a large join

def _pushdown_program(env, left: int, right: int, declare: bool):
    probe = env.generate_sequence(
        left, lambda i: (i % (right // 2), i & 1023), name="probe"
    )
    build = env.generate_sequence(
        right, lambda i: (i, i * 3), name="build"
    )
    joined = probe.join(
        build, 0, 0, lambda p, b: (p[0], p[1], b[1]), name="lookup"
    )
    joined.with_forwarded_fields({0: 0, 1: 1}, input_index=0)
    return joined.filter(
        lambda r: r[1] < 10,  # keeps ~1% of the 0..1023 range
        fields=(1,) if declare else None,
        name="selective",
    )


def _run_pushdown(left: int, right: int, parallelism: int, declare: bool):
    env = _environment(parallelism)
    out = _pushdown_program(env, left, right, declare)
    gc.collect()
    started = time.perf_counter()
    result = env.collect(out)
    elapsed = time.perf_counter() - started
    env.close()
    return elapsed, result, 0, 0


# ----------------------------------------------------------------------
# row 2: delta-CC forced onto a static broadcast plan

def _path_bundle(num_paths: int, length: int):
    """Disjoint bidirectional paths: the workset stays ~|V| for ~length
    supersteps (every vertex keeps learning a smaller label), the
    worst case for a broadcast probe."""
    edges = []
    for p in range(num_paths):
        base = p * length
        for i in range(length - 1):
            edges.append((base + i, base + i + 1))
            edges.append((base + i + 1, base + i))
    return num_paths * length, edges


def _cc_forced_broadcast(env, num_vertices: int, edges):
    from repro.runtime.plan import BROADCAST, FORWARD, LocalStrategy
    verts = env.from_iterable(
        ((v, v) for v in range(num_vertices)), name="vertices"
    )
    edge_ds = env.from_iterable(edges, name="edges")
    iteration = env.iterate_delta(
        verts, verts, key_fields=0, max_iterations=1_000, name="cc",
    )
    expand = iteration.workset.join(
        edge_ds, 0, 0, lambda w, e: (e[1], w[1]), name="expand"
    )
    best = expand.min_by_key(0, 1, name="minlabel")
    delta = best.cogroup(
        iteration.solution_set, 0, 0,
        lambda k, cand, cur: [
            c for c in cand if not cur or c[1] < cur[0][1]
        ],
        inner=False, name="update",
    )
    # the stale-estimate plan: replicate the workset over resident
    # edge tables every superstep
    env.plan_overrides[expand.node.id] = {
        "ship": {0: BROADCAST, 1: FORWARD},
        "local": LocalStrategy.HASH_BUILD_RIGHT,
    }
    return iteration.close(delta, delta)


def _run_cc(num_vertices: int, edges, parallelism: int, adaptive: bool):
    env = _environment(parallelism, adaptive=adaptive,
                       backend="multiprocess")
    out = _cc_forced_broadcast(env, num_vertices, edges)
    gc.collect()
    started = time.perf_counter()
    result = sorted(env.collect(out))
    elapsed = time.perf_counter() - started
    switches = env.metrics.plan_switches
    wire_bytes = env.metrics.bytes_shipped
    env.close()
    return elapsed, result, switches, wire_bytes


def _measure(bench, rounds: int):
    """Interleaved v2/baseline medians plus a result-equality check."""
    bench(True)  # warm both modes before timing
    bench(False)
    optimized_times, baseline_times = [], []
    optimized = baseline = None
    switches = 0
    optimized_bytes = baseline_bytes = 0
    for _ in range(rounds):
        elapsed, optimized, switches, optimized_bytes = bench(True)
        optimized_times.append(elapsed)
        elapsed, baseline, _, baseline_bytes = bench(False)
        baseline_times.append(elapsed)
    return (
        statistics.median(optimized_times),
        statistics.median(baseline_times),
        sorted(optimized) == sorted(baseline),
        switches,
        optimized_bytes,
        baseline_bytes,
    )


def run(join_left: int = 600_000, join_right: int = 60_000,
        cc_paths: int = 200, cc_path_length: int = 60,
        parallelism: int = 4, rounds: int = 3,
        save_artifact: bool = True) -> OptimizerBenchResult:
    cc_vertices, cc_edges = _path_bundle(cc_paths, cc_path_length)
    result = OptimizerBenchResult(
        join_left=join_left,
        join_right=join_right,
        cc_vertices=cc_vertices,
        cc_edges=len(cc_edges),
        parallelism=parallelism,
        rounds=rounds,
    )

    cases = [
        # (name, gate on, size, bench thunk, needs a plan switch)
        ("filter pushdown (1% selective join)", "speedup",
         join_left + join_right,
         lambda on: _run_pushdown(join_left, join_right, parallelism, on),
         False),
        ("adaptive rescue (forced broadcast CC, multiprocess)", "bytes",
         cc_vertices + len(cc_edges),
         lambda on: _run_cc(cc_vertices, cc_edges, parallelism, on),
         True),
    ]
    for name, gate_on, size, bench, needs_switch in cases:
        (optimized_s, baseline_s, agree, switches,
         optimized_bytes, baseline_bytes) = _measure(bench, rounds)
        speedup = baseline_s / optimized_s if optimized_s > 0 else float("inf")
        bytes_ratio = (
            baseline_bytes / optimized_bytes if optimized_bytes else None
        )
        gate_value = speedup if gate_on == "speedup" else (bytes_ratio or 0.0)
        result.rows.append({
            "workload": name,
            "gate_on": gate_on,
            "gate_value": gate_value,
            "records": size,
            "optimized_s": optimized_s,
            "baseline_s": baseline_s,
            "speedup": speedup,
            "bytes_ratio": bytes_ratio,
            "optimized_bytes": optimized_bytes,
            "baseline_bytes": baseline_bytes,
            "results_agree": agree,
            "plan_switches": switches,
        })
        if not agree:
            result.ok = False
        if gate_value < SPEEDUP_FLOOR:
            result.ok = False
        if needs_switch and switches < 1:
            result.ok = False

    if save_artifact:
        payload = {
            "experiment": "optimizer",
            "meta": bench_meta(
                backend="simulated+multiprocess",
                parallelism=parallelism,
                rounds=rounds,
                adaptive="v2-vs-baseline",
            ),
            "join_left": join_left,
            "join_right": join_right,
            "cc_vertices": result.cc_vertices,
            "cc_edges": result.cc_edges,
            "parallelism": parallelism,
            "rounds": rounds,
            "speedup_floor": SPEEDUP_FLOOR,
            "ok": result.ok,
            "note": (
                "Row 1 compares the same selective-filter join with and "
                "without declared read fields (the only thing pushdown "
                "legality keys on) and gates on wall-clock.  Row 2 "
                "forces path-bundle delta-CC onto a static "
                "broadcast-probe plan on the multiprocess backend and "
                "lets the adaptive executor rescue it mid-iteration; it "
                "gates on the serialized wire-byte reduction (the "
                "network-dominated cost the paper optimizes), reporting "
                "wall-clock alongside.  Rows report the median of "
                "interleaved rounds; both modes must collect identical "
                "results."
            ),
            "rows": result.rows,
        }
        path = os.path.join(results_dir(), ARTIFACT)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        result.artifact_path = path
    return result
