"""Table 2: dataset properties, paper vs the scaled synthetic stand-ins."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.reporting import render_table
from repro.bench.workloads import graph
from repro.graphs.datasets import PAPER_PROPERTIES
from repro.graphs.stats import compute_stats


@dataclass
class Table2Result:
    rows: list

    def report(self) -> str:
        table = render_table(
            "Table 2 — dataset properties (paper original vs synthetic "
            "stand-in)",
            ["dataset", "vertices (paper)", "edges (paper)",
             "avg deg (paper)", "vertices (ours)", "edges (ours)",
             "avg deg (ours)", "diameter>= (ours)"],
            self.rows,
        )
        shape = (
            "Shape check: the stand-ins preserve the *ratios* that drive "
            "the evaluation —\n"
            "  hollywood is the dense outlier, twitter denser than the web "
            "graphs, webbase has an extreme diameter."
        )
        return table + "\n\n" + shape


def run() -> Table2Result:
    rows = []
    for name, (label, vertices, edges, avg_deg) in PAPER_PROPERTIES.items():
        g = graph(name)
        stats = compute_stats(g, diameter_probes=1)
        rows.append([
            label, vertices, edges, f"{avg_deg:.2f}",
            stats.num_vertices, stats.num_edges,
            f"{stats.avg_degree:.2f}", stats.diameter_lower_bound,
        ])
    return Table2Result(rows)
