"""Figure 2: effective work of Connected Components on the FOAF graph.

Per iteration: vertices inspected (solution-set accesses), vertices
changed (applied delta records), and working-set entries.  The paper's
message: work collapses after the first few supersteps — late
iterations touch a handful of vertices while the bulk algorithm would
still touch all 1.2M.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import ExecutionEnvironment
from repro.algorithms import connected_components as cc
from repro.bench.reporting import render_table
from repro.bench.workloads import bench_parallelism, graph


@dataclass
class Fig2Result:
    dataset: str
    num_vertices: int
    per_iteration: list  # IterationStats

    def report(self) -> str:
        rows = [
            [s.superstep, s.solution_accesses, s.delta_size, s.workset_size]
            for s in self.per_iteration
        ]
        table = render_table(
            f"Figure 2 — effective work of incremental CC on {self.dataset} "
            f"({self.num_vertices} vertices)",
            ["iteration", "vertices inspected", "vertices changed",
             "workset entries"],
            rows,
        )
        first = self.per_iteration[0]
        late = self.per_iteration[min(len(self.per_iteration) - 1, 9)]
        shape = "\n".join([
            "Shape check (paper: late iterations touch a tiny fraction of "
            "the graph; changes track the workset size):",
            f"  iteration 1 inspected {first.solution_accesses} vs "
            f"iteration {late.superstep} inspected {late.solution_accesses}",
            f"  supersteps until convergence: {len(self.per_iteration)}",
        ])
        return table + "\n\n" + shape


def run(dataset: str = "foaf") -> Fig2Result:
    g = graph(dataset)
    env = ExecutionEnvironment(bench_parallelism())
    cc.cc_incremental(env, g, variant="cogroup", mode="superstep")
    return Fig2Result(
        dataset=dataset,
        num_vertices=g.num_vertices,
        per_iteration=list(env.metrics.iteration_log),
    )
