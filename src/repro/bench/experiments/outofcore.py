"""Out-of-core smoke: CC whose state is ~10x the memory budget.

The workload is semi-naive incremental connected components over
``CHAINS`` disjoint chains.  The iteration starts from an **empty**
solution set and a workset of one seed per chain; each superstep the
frontier discovers the next chain vertex through the anti-join shape
(``cogroup(solution_set, inner=False)``) and inserts a record carrying
a distinct ~9 KB payload.  The converged solution set therefore holds
``CHAINS * CHAIN_LEN`` fat records — far more than the forced
``memory_budget_bytes`` — while any single superstep only touches one
frontier's worth of them.

Three configurations run, each in its own forked child so peak-RSS
high-water marks don't bleed between them:

* ``simulated / unbounded`` — the in-memory reference.  Its peak RSS
  *should* be large (the whole state is heap-resident); recorded for
  contrast, not gated.
* ``simulated / budget`` — the out-of-core run.  Gated three ways:
  results bitwise identical to the reference, solution state on disk
  at least ``STATE_RATIO_FLOOR``x the budget, and peak RSS growth (the
  VmHWM delta after a ``/proc/self/clear_refs`` reset) at most
  ``2 * budget + RSS_ALLOWANCE``.
* ``pool / budget`` — the persistent-worker backend under the same
  budget; gated on bitwise identity (RSS lives in the workers, whose
  budget is per-process).

Results cross the identity comparison as ``(vertex, component,
stable_hash(record))`` digests, so the full payload content is attested
without ever gathering the fat records into one process.

Exit is nonzero on any gate violation; the JSON artifact lands in
``benchmarks/results/BENCH_outofcore.json``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field

from repro.bench.reporting import (
    bench_meta,
    format_quantity,
    render_table,
    results_dir,
)

ARTIFACT = "BENCH_outofcore.json"

#: graph shape: disjoint chains, one discovered vertex per superstep each
CHAINS = 256
CHAIN_LEN = 44
#: distinct payload bytes attached to every discovered solution record
PAYLOAD_BYTES = 9216
#: the forced memory budget (8 MiB)
BUDGET_BYTES = 8 * 1024 * 1024
#: the solution state on disk must be at least this multiple of the budget
STATE_RATIO_FLOOR = 10.0
#: fixed allowance on top of 2x budget for the RSS gate: interpreter
#: churn, the constant edge table, one superstep's frontier, result rows
RSS_ALLOWANCE = 24 * 1024 * 1024

PARALLELISM = 4


# ----------------------------------------------------------------------
# peak-RSS measurement (Linux high-water mark, resettable)


def _read_status_kb(field_name: str):
    try:
        with open("/proc/self/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith(field_name + ":"):
                    return int(line.split()[1]) * 1024
    except OSError:
        return None
    return None


def _reset_peak_rss() -> bool:
    """Reset VmHWM to the current RSS; True if the platform supports it."""
    try:
        with open("/proc/self/clear_refs", "w", encoding="ascii") as fh:
            fh.write("5")
        return True
    except OSError:
        return False


# ----------------------------------------------------------------------
# the workload


def _chain_edges():
    edges = []
    for chain in range(CHAINS):
        base = chain * CHAIN_LEN
        for i in range(CHAIN_LEN - 1):
            edges.append((base + i, base + i + 1))
    return edges


def _build_digest(env):
    """The CC dataflow; returns the digest dataset to collect."""
    reps = PAYLOAD_BYTES // 8
    edges = env.from_iterable(_chain_edges(), name="chain_edges")
    seeds = env.from_iterable(
        [(chain * CHAIN_LEN, chain * CHAIN_LEN) for chain in range(CHAINS)],
        name="seeds",
    )
    empty_solution = env.from_iterable([], name="empty_solution")
    iteration = env.iterate_delta(
        empty_solution, seeds, key_fields=0,
        max_iterations=CHAIN_LEN + 2, name="outofcore_cc",
    )

    def discover(vid, candidates, stored):
        if stored:
            return  # semi-naive: never revisit a discovered vertex
        root = min(candidate for (_v, candidate) in candidates)
        yield (vid, root, ("%08d" % vid) * reps)

    delta = iteration.workset.cogroup(
        iteration.solution_set, 0, 0, discover, inner=False, name="discover"
    )
    next_workset = delta.join(
        edges, 0, 0, lambda d, e: (e[1], d[1]), name="frontier"
    )
    result = iteration.close(delta, next_workset, mode="superstep")

    from repro.common.hashing import stable_hash

    return result.map(
        lambda r: (r[0], r[1], stable_hash(r)), name="digest"
    )


def _child_run(conn, budget, backend):
    """One configuration, in its own process (fresh RSS high-water mark)."""
    try:
        import gc

        from repro.dataflow.environment import ExecutionEnvironment
        from repro.runtime.config import RuntimeConfig

        gc.collect()
        rss_resettable = _reset_peak_rss()
        rss_floor = _read_status_kb("VmRSS")

        config = RuntimeConfig(
            check_invariants=False, memory_budget_bytes=budget
        )
        env = ExecutionEnvironment(
            parallelism=PARALLELISM, config=config, backend=backend
        )
        started = time.perf_counter()
        digest = sorted(env.collect(_build_digest(env)))
        elapsed = time.perf_counter() - started
        disk_bytes = (
            env.storage_session.disk_bytes()
            if env.storage_session is not None else 0
        )
        peak = _read_status_kb("VmHWM")
        peak_delta = None
        if rss_resettable and peak is not None and rss_floor is not None:
            peak_delta = max(0, peak - rss_floor)
        payload = {
            "ok": True,
            "digest": digest,
            "elapsed_s": elapsed,
            "disk_bytes": disk_bytes,
            "peak_rss_delta": peak_delta,
            "records_spilled": env.metrics.records_spilled,
            "bytes_spilled": env.metrics.bytes_spilled,
            "supersteps": (
                env.iteration_summaries[0].supersteps
                if env.iteration_summaries else None
            ),
            "converged": (
                env.iteration_summaries[0].converged
                if env.iteration_summaries else None
            ),
        }
        env.close()
        conn.send(payload)
    except BaseException:
        conn.send({"ok": False, "error": traceback.format_exc()})
    finally:
        conn.close()


def _run_config(budget, backend):
    ctx = multiprocessing.get_context("fork")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=_child_run, args=(child_conn, budget, backend), daemon=False
    )
    process.start()
    child_conn.close()
    try:
        payload = parent_conn.recv()
    except EOFError:
        payload = {"ok": False,
                   "error": "bench child died without reporting"}
    finally:
        parent_conn.close()
        process.join()
    if not payload.get("ok"):
        raise RuntimeError(
            f"out-of-core bench child ({backend or 'simulated'}, "
            f"budget={budget}) failed:\n{payload.get('error')}"
        )
    return payload


# ----------------------------------------------------------------------
# reporting


@dataclass
class OutOfCoreResult:
    budget_bytes: int
    vertices: int
    payload_bytes: int
    rows: list[dict] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)
    ok: bool = True
    artifact_path: str = ""

    def report(self) -> str:
        def fmt_mb(value):
            if value is None:
                return "-"
            return f"{value / (1024 * 1024):.1f} MB"

        table_rows = [
            [row["label"],
             fmt_mb(row["budget_bytes"]),
             fmt_mb(row["peak_rss_delta"]),
             fmt_mb(row["disk_bytes"]),
             format_quantity(row["records_spilled"]),
             f"{row['elapsed_s']:.2f} s",
             "yes" if row["identical"] else "NO"]
            for row in self.rows
        ]
        table = render_table(
            f"Out-of-core CC — {self.vertices} vertices x "
            f"~{self.payload_bytes} B payload vs a "
            f"{self.budget_bytes // (1024 * 1024)} MiB budget "
            f"(parallelism={PARALLELISM})",
            ["configuration", "budget", "peak RSS growth", "state on disk",
             "spilled", "wall", "identical"],
            table_rows,
        )
        if self.ok:
            verdict = (
                "OK: out-of-core runs are bitwise identical to the "
                f"in-memory reference, hold >= {STATE_RATIO_FLOOR:.0f}x "
                "the budget on disk, and stay within the RSS gate."
            )
        else:
            verdict = "FAIL:\n  - " + "\n  - ".join(self.failures)
        return table + "\n\n" + verdict + f"\nArtifact: {self.artifact_path}"


def run(save_artifact: bool = True) -> OutOfCoreResult:
    vertices = CHAINS * CHAIN_LEN
    result = OutOfCoreResult(
        budget_bytes=BUDGET_BYTES,
        vertices=vertices,
        payload_bytes=PAYLOAD_BYTES,
    )
    rss_gate = 2 * BUDGET_BYTES + RSS_ALLOWANCE

    configs = [
        ("simulated / unbounded", None, None),
        ("simulated / budget", BUDGET_BYTES, None),
        ("pool / budget", BUDGET_BYTES, "pool"),
    ]
    reference = None
    for label, budget, backend in configs:
        payload = _run_config(budget, backend)
        if reference is None:
            reference = payload["digest"]
        identical = payload["digest"] == reference
        row = {
            "label": label,
            "backend": backend or "simulated",
            "budget_bytes": budget,
            "elapsed_s": payload["elapsed_s"],
            "peak_rss_delta": payload["peak_rss_delta"],
            "disk_bytes": payload["disk_bytes"],
            "records_spilled": payload["records_spilled"],
            "bytes_spilled": payload["bytes_spilled"],
            "supersteps": payload["supersteps"],
            "converged": payload["converged"],
            "identical": identical,
        }
        result.rows.append(row)
        if not identical:
            result.failures.append(
                f"{label}: results differ from the in-memory reference"
            )
        if not payload["converged"]:
            result.failures.append(f"{label}: iteration did not converge")
        if budget is not None and backend is None:
            if payload["disk_bytes"] < STATE_RATIO_FLOOR * budget:
                result.failures.append(
                    f"{label}: only {payload['disk_bytes']} bytes on disk "
                    f"(< {STATE_RATIO_FLOOR:.0f}x the {budget} byte budget) "
                    "— the state never left memory"
                )
            delta = payload["peak_rss_delta"]
            if delta is None:
                row["rss_gate"] = "unsupported (no /proc clear_refs)"
            elif delta > rss_gate:
                result.failures.append(
                    f"{label}: peak RSS grew {delta} bytes, above the "
                    f"gate of 2*budget + {RSS_ALLOWANCE} = {rss_gate}"
                )
    result.ok = not result.failures

    if save_artifact:
        payload = {
            "experiment": "outofcore",
            "meta": bench_meta(
                backend="simulated+pool",
                memory_budget_bytes=BUDGET_BYTES,
                parallelism=PARALLELISM,
            ),
            "chains": CHAINS,
            "chain_len": CHAIN_LEN,
            "vertices": vertices,
            "payload_bytes": PAYLOAD_BYTES,
            "budget_bytes": BUDGET_BYTES,
            "state_ratio_floor": STATE_RATIO_FLOOR,
            "rss_gate_bytes": rss_gate,
            "rss_allowance_bytes": RSS_ALLOWANCE,
            "parallelism": PARALLELISM,
            "ok": result.ok,
            "failures": result.failures,
            "note": (
                "Semi-naive incremental CC grown from an empty solution "
                "set; every discovered vertex carries a distinct payload, "
                "so the converged solution state dwarfs the forced "
                "memory budget.  Peak RSS growth is the VmHWM delta "
                "after a /proc/self/clear_refs reset in a fresh fork; "
                "identity crosses as (vertex, component, "
                "stable_hash(record)) digests of the full records."
            ),
            "rows": [
                {k: v for k, v in row.items()} for row in result.rows
            ],
        }
        path = os.path.join(results_dir(), ARTIFACT)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        result.artifact_path = path
    return result
