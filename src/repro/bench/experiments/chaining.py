"""Chain-fusion microbenchmark: fused vs unfused forward pipelines.

Two workloads, both run end-to-end through the public environment API
once with operator chaining on (the default) and once with
``chaining=False`` (the ``REPRO_NO_CHAIN=1`` configuration):

* **pipeline** (gating) — a 5-operator map/filter pipeline over a few
  million generated records.  Unfused, every edge materializes a full
  intermediate partition list and pays a forward ship; fused, each
  ``RecordBatch``-sized chunk runs the whole chain while hot in cache
  and no intermediate dataset ever exists.  The gap widens with input
  size because the unfused intermediates evict each other from cache
  and churn the allocator.
* **cc dynamic path** (reporting) — connected components as a delta
  iteration whose per-superstep candidate path carries a fused
  map→filter normalization chain: the speedup fusion buys *inside* an
  iteration's dynamic data path, where the chain re-runs every
  superstep.

The run fails (``ok=False``, nonzero exit under ``python -m repro.bench
chaining``) if the pipeline row's fused speedup falls below
``SPEEDUP_FLOOR`` — that regression would mean fusion no longer pays
for itself.  Both modes must also agree on the collected results; a
mismatch fails the run outright.

The JSON artifact lands in ``benchmarks/results/BENCH_chaining.json``.
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import time
from dataclasses import dataclass, field

from repro.bench.reporting import (
    bench_meta,
    format_quantity,
    render_table,
    results_dir,
)
from repro.graphs.generators import erdos_renyi
from repro.runtime.config import RuntimeConfig

ARTIFACT = "BENCH_chaining.json"

#: fused wall-clock below this multiple of the unfused path on the
#: pipeline row fails the benchmark
SPEEDUP_FLOOR = 1.5


@dataclass
class ChainingResult:
    records: int
    cc_vertices: int
    cc_edges: int
    parallelism: int
    rounds: int
    rows: list[dict] = field(default_factory=list)
    ok: bool = True
    artifact_path: str = ""

    def report(self) -> str:
        table_rows = [
            [row["workload"],
             format_quantity(row["records"]),
             f"{row['fused_s'] * 1000:.0f} ms",
             f"{row['unfused_s'] * 1000:.0f} ms",
             f"{row['speedup']:.2f}x",
             ("yes" if row["speedup"] >= SPEEDUP_FLOOR else "NO")
             if row["gating"] else "-"]
            for row in self.rows
        ]
        table = render_table(
            f"Chain fusion — fused vs REPRO_NO_CHAIN=1 "
            f"(parallelism={self.parallelism}, median of {self.rounds})",
            ["workload", "records", "fused", "unfused", "speedup",
             f">={SPEEDUP_FLOOR:.1f}x"],
            table_rows,
        )
        verdict = (
            "OK: the fused pipeline clears the "
            f"{SPEEDUP_FLOOR:.1f}x speedup floor."
            if self.ok else
            "FAIL: fused execution fell below "
            f"{SPEEDUP_FLOOR:.1f}x the unfused path (or modes disagreed)."
        )
        return table + "\n\n" + verdict + f"\nArtifact: {self.artifact_path}"


def _environment(parallelism: int, chaining: bool):
    from repro.dataflow.environment import ExecutionEnvironment
    return ExecutionEnvironment(
        parallelism=parallelism,
        config=RuntimeConfig(
            check_invariants=False, trace=False, chaining=chaining,
        ),
    )


def _pipeline(env, records: int):
    """The 5-operator map/filter chain the planner fuses end-to-end."""
    ds = env.generate_sequence(records, lambda i: (i, i & 1023))
    return (
        ds.map(lambda r: (r[0] + 1, r[1]))
        .filter(lambda r: r[1] != 7)
        .map(lambda r: (r[0], r[1] + 1))
        .map(lambda r: (r[0] ^ 5, r[1]))
        .filter(lambda r: r[0] % 5 != 0)
    )


def _run_pipeline(records: int, parallelism: int, chaining: bool):
    env = _environment(parallelism, chaining)
    out = _pipeline(env, records)
    gc.collect()
    started = time.perf_counter()
    result = env.collect(out)
    return time.perf_counter() - started, result


def _cc_chained(env, graph, max_iterations: int = 1_000):
    """Delta-iterative CC with a fusable chain on the dynamic path.

    The candidate path normalizes each propagated label and drops
    candidates that provably cannot improve (a vertex's label never
    exceeds its id), so every superstep re-runs a map→filter chain over
    the freshly produced workset.
    """
    vertices = env.from_iterable(
        ((v, v) for v in range(graph.num_vertices)), name="vertices"
    )
    edges = env.from_iterable(graph.edge_tuples(), name="edges")
    initial_workset = env.from_iterable(
        ((int(dst), src) for src, dst in graph.edge_tuples()),
        name="initial_candidates",
    )
    iteration = env.iterate_delta(
        vertices, initial_workset, key_fields=0,
        max_iterations=max_iterations, name="cc_chained",
    )

    def min_candidate(vid, candidates, stored):
        current = stored[0][1]
        best = min(candidate for (_v, candidate) in candidates)
        if best < current:
            yield (vid, best)

    delta = iteration.workset.cogroup(
        iteration.solution_set, 0, 0, min_candidate, name="update"
    )
    next_workset = (
        delta.join(edges, 0, 0, lambda d, e: (e[1], d[1]),
                   name="new_candidates")
        .map(lambda c: (c[0], c[1]), name="normalize")
        .filter(lambda c: c[1] < c[0], name="improving_only")
    )
    result = iteration.close(
        delta, next_workset,
        should_replace=lambda new, old: new[1] < old[1],
        mode="superstep",
    )
    return result


def _run_cc(graph, parallelism: int, chaining: bool):
    env = _environment(parallelism, chaining)
    out = _cc_chained(env, graph)
    gc.collect()
    started = time.perf_counter()
    result = sorted(env.collect(out))
    return time.perf_counter() - started, result


def _measure(bench, rounds: int):
    """Interleaved fused/unfused medians plus a result-equality check."""
    bench(True)  # warm both modes before timing
    bench(False)
    fused_times, unfused_times = [], []
    fused_result = unfused_result = None
    for _ in range(rounds):
        elapsed, fused_result = bench(True)
        fused_times.append(elapsed)
        elapsed, unfused_result = bench(False)
        unfused_times.append(elapsed)
    return (
        statistics.median(fused_times),
        statistics.median(unfused_times),
        sorted(fused_result) == sorted(unfused_result),
    )


def run(records: int = 3_000_000, cc_vertices: int = 20_000,
        cc_avg_degree: float = 4.0, parallelism: int = 4, rounds: int = 3,
        save_artifact: bool = True) -> ChainingResult:
    graph = erdos_renyi(cc_vertices, cc_avg_degree, seed=17, name="chaining")
    result = ChainingResult(
        records=records,
        cc_vertices=graph.num_vertices,
        cc_edges=graph.num_edges,
        parallelism=parallelism,
        rounds=rounds,
    )

    cases = [
        ("pipeline (5-op map/filter)", True, records,
         lambda chaining: _run_pipeline(records, parallelism, chaining)),
        ("cc dynamic path (delta iteration)", False,
         graph.num_vertices + graph.num_edges,
         lambda chaining: _run_cc(graph, parallelism, chaining)),
    ]
    for name, gating, size, bench in cases:
        fused_s, unfused_s, agree = _measure(bench, rounds)
        speedup = unfused_s / fused_s if fused_s > 0 else float("inf")
        result.rows.append({
            "workload": name,
            "gating": gating,
            "records": size,
            "fused_s": fused_s,
            "unfused_s": unfused_s,
            "speedup": speedup,
            "results_agree": agree,
        })
        if not agree:
            result.ok = False
        if gating and speedup < SPEEDUP_FLOOR:
            result.ok = False

    if save_artifact:
        payload = {
            "experiment": "chaining",
            "meta": bench_meta(
                backend="simulated",
                parallelism=parallelism,
                rounds=rounds,
                chaining="fused-vs-unfused",
                layout="columnar" if RuntimeConfig().columnar else "row",
            ),
            "records": records,
            "cc_vertices": result.cc_vertices,
            "cc_edges": result.cc_edges,
            "parallelism": parallelism,
            "rounds": rounds,
            "speedup_floor": SPEEDUP_FLOOR,
            "ok": result.ok,
            "note": (
                "Both modes run the identical plan through the public "
                "API; only RuntimeConfig.chaining differs.  Rows report "
                "the median of interleaved rounds; 'gating' rows must "
                "clear the speedup floor and both modes must collect "
                "identical results."
            ),
            "rows": result.rows,
        }
        path = os.path.join(results_dir(), ARTIFACT)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        result.artifact_path = path
    return result
