"""Command-line experiment runner: ``python -m repro.bench <experiment>``.

Runs one (or all) of the paper's table/figure reproductions and prints
the report, without going through pytest.  Useful for quick looks and
for regenerating ``benchmarks/results/`` piecemeal.

Examples::

    python -m repro.bench --list
    python -m repro.bench fig2
    python -m repro.bench fig9 fig10
    python -m repro.bench all
    python -m repro.bench trace connected_components \
        --backends simulated,multiprocess
"""

from __future__ import annotations

import argparse
import sys
import time


def _registry():
    from repro.bench import audit
    from repro.bench.experiments import (
        chaining, dataplane, extensions, fig2, fig4, fig7, fig8, fig9,
        fig10, fig11, fig12, optimizer_bench, outofcore, scaling, table1,
        table2, telemetry_overhead,
    )
    return {
        "audit": ("Differential audit — engines agree, invariants hold",
                  audit.run),
        "scaling": ("Backend scaling — multiprocess workers vs simulator",
                    scaling.run),
        "dataplane": ("Data plane — batched vs record-at-a-time framing",
                      dataplane.run),
        "chaining": ("Chain fusion — fused vs unfused forward pipelines",
                     chaining.run),
        "optimizer": ("Optimizer v2 — pushdown and adaptive "
                      "re-optimization vs static plans",
                      optimizer_bench.run),
        "outofcore": ("Out-of-core — CC state ~10x the memory budget, "
                      "RSS-gated", outofcore.run),
        "telemetry": ("Telemetry overhead — REPRO_TELEMETRY=1 within "
                      "5% of off", telemetry_overhead.run),
        "table1": ("Table 1 — iteration templates", table1.run),
        "table2": ("Table 2 — dataset properties", table2.run),
        "fig2": ("Figure 2 — CC effective work (FOAF)", fig2.run),
        "fig4": ("Figure 4 — optimizer PageRank plans", fig4.run),
        "fig7": ("Figure 7 — PageRank totals", fig7.run),
        "fig8": ("Figure 8 — PageRank per-iteration", fig8.run),
        "fig9": ("Figure 9 — CC totals", fig9.run),
        "fig10": ("Figure 10 — CC on webbase to convergence", fig10.run),
        "fig11": ("Figure 11 — CC per-iteration", fig11.run),
        "fig12": ("Figure 12 — time vs messages", fig12.run),
        "adaptive": ("Extension — adaptive PageRank",
                     extensions.run_adaptive_pagerank),
        "ablation-optimizer": ("Ablation — optimizer vs naive planner",
                               extensions.run_optimizer_ablation),
        "ablation-modes": ("Ablation — delta execution modes",
                           extensions.run_modes_ablation),
    }


def main(argv=None) -> int:
    registry = _registry()
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help=f"experiment ids ({', '.join(registry)}) or 'all'",
    )
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--save", action="store_true",
                        help="also persist reports to benchmarks/results/")
    parser.add_argument(
        "--backends", default=None, metavar="NAMES",
        help="comma-separated execution backends for the audit and trace "
             "commands (e.g. 'simulated,multiprocess,pool')",
    )
    parser.add_argument(
        "--workers", default=None, metavar="COUNTS",
        help="comma-separated worker counts for the scaling experiment "
             "(e.g. '1,2'); default 1,2,4,8",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="monitor command: skip the live frames, evaluate the final "
             "state once and exit (the CI smoke mode)",
    )
    parser.add_argument(
        "--interval", type=float, default=None, metavar="SECONDS",
        help="monitor command: worker heartbeat cadence (default 0.1)",
    )
    args = parser.parse_args(argv)

    worker_counts = None
    if args.workers:
        try:
            worker_counts = tuple(
                int(part) for part in args.workers.split(",") if part.strip()
            )
        except ValueError:
            parser.error(f"--workers must be integers, got {args.workers!r}")

    backends = None
    if args.backends:
        backends = tuple(
            part.strip() for part in args.backends.split(",") if part.strip()
        )

    if args.list or not args.experiments:
        width = max(len(name) for name in registry)
        for name, (title, _fn) in registry.items():
            print(f"  {name.ljust(width)}  {title}")
        from repro.bench import trace as trace_mod
        print(f"  {'trace <workload>'.ljust(width)}  "
              "Traced run + per-phase profile; writes JSONL and "
              "Chrome-trace artifacts\n"
              f"  {''.ljust(width)}  workloads: "
              f"{', '.join(sorted(trace_mod.WORKLOADS))}")
        print(f"  {'monitor <workload>'.ljust(width)}  "
              "Live worker-health view of a pool run (heartbeats, "
              "supersteps, RSS); --once for the smoke check")
        return 0

    if args.experiments[0] == "trace":
        from repro.bench import trace as trace_mod
        workloads = args.experiments[1:] or ["connected_components"]
        unknown = [w for w in workloads if w not in trace_mod.WORKLOADS]
        if unknown:
            parser.error(
                f"unknown trace workload(s): {', '.join(unknown)} "
                f"(available: {', '.join(sorted(trace_mod.WORKLOADS))})"
            )
        status = 0
        for workload in workloads:
            print(f"\n### Trace — {workload}")
            started = time.perf_counter()
            result = trace_mod.run(
                workload,
                backends=backends or ("simulated", "multiprocess"),
            )
            elapsed = time.perf_counter() - started
            report = result.report()
            if args.save:
                from repro.bench.reporting import persist_report
                persist_report(f"trace_{workload}", report)
            else:
                print(report)
            print(f"\n[trace {workload} finished in {elapsed:.1f} s]")
            if not result.ok:
                status = 1
        return status

    if args.experiments[0] == "monitor":
        from repro.bench import monitor as monitor_mod
        workloads = args.experiments[1:] or ["connected_components"]
        unknown = [w for w in workloads if w not in monitor_mod.WORKLOADS]
        if unknown:
            parser.error(
                f"unknown monitor workload(s): {', '.join(unknown)} "
                f"(available: {', '.join(sorted(monitor_mod.WORKLOADS))})"
            )
        status = 0
        for workload in workloads:
            print(f"\n### Monitor — {workload}")
            result = monitor_mod.run(
                workload,
                once=args.once,
                interval_s=args.interval if args.interval else 0.1,
            )
            report = result.report()
            if args.save:
                from repro.bench.reporting import persist_report
                persist_report(f"monitor_{workload}", report)
            else:
                print(report)
            if not result.ok:
                status = 1
        return status

    requested = list(registry) if "all" in args.experiments else (
        args.experiments
    )
    unknown = [name for name in requested if name not in registry]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    status = 0
    for name in requested:
        title, run = registry[name]
        print(f"\n### {title} [{name}]")
        started = time.perf_counter()
        if backends and name == "audit":
            result = run(backends=backends)
        elif worker_counts and name == "scaling":
            result = run(worker_counts=worker_counts)
        else:
            result = run()
        elapsed = time.perf_counter() - started
        report = result.report()
        if args.save:
            from repro.bench.reporting import persist_report
            persist_report(name, report)
        else:
            print(report)
        print(f"\n[{name} finished in {elapsed:.1f} s]")
        if getattr(result, "ok", True) is False:
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
