"""Benchmark harness: regenerates every table and figure of the paper.

Each experiment module under :mod:`repro.bench.experiments` exposes a
``run(...)`` function returning a structured result with a
``report() -> str`` rendering of the paper's rows/series.  The pytest
benchmarks under ``benchmarks/`` drive these and persist the reports to
``benchmarks/results/``; EXPERIMENTS.md records paper-vs-measured.

Scaling: the datasets are ~1000× smaller than the paper's (see
DESIGN.md), so absolute times are not comparable — the reported shapes
(which system wins, by what factor, where per-iteration work decays)
are the reproduction targets.
"""

from repro.bench.reporting import format_quantity, format_seconds, render_table

__all__ = ["format_quantity", "format_seconds", "render_table"]
