"""Iteration constructs: fixpoint templates, solution sets, microstep analysis.

The logical iteration *nodes* live in :mod:`repro.dataflow.graph`; this
package holds the machinery behind them:

* :mod:`repro.iterations.fixpoint` — the three iteration templates of
  Table 1 (FIXPOINT, INCR, MICRO) as executable, engine-independent
  reference implementations, plus CPO-based convergence checking.
* :mod:`repro.iterations.solution_set` — the partitioned, key-indexed
  solution set with the ``∪̇`` delta-union of Section 5.1.
* :mod:`repro.iterations.microstep` — static eligibility analysis for
  microstep execution (Section 5.2).
* :mod:`repro.iterations.termination` — termination detection for
  synchronous (empty workset vote) and asynchronous (acknowledgement
  counting) execution.
"""

from repro.iterations.fixpoint import (
    FixpointResult,
    fixpoint_iterate,
    incremental_iterate,
    microstep_iterate,
)
from repro.iterations.microstep import MicrostepReport, analyze_microstep
from repro.iterations.solution_set import SolutionSetIndex
from repro.iterations.termination import (
    AsyncTerminationDetector,
    EmptyWorksetVote,
)
from repro.iterations.vertex_centric import run_vertex_centric

__all__ = [
    "AsyncTerminationDetector",
    "EmptyWorksetVote",
    "FixpointResult",
    "MicrostepReport",
    "SolutionSetIndex",
    "analyze_microstep",
    "fixpoint_iterate",
    "incremental_iterate",
    "microstep_iterate",
    "run_vertex_centric",
]
