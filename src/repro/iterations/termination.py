"""Termination detection for synchronous and asynchronous iterations.

Synchronous supersteps use the simple voting scheme of Section 5.3: at
the superstep barrier every partition reports its produced-workset size,
and the iteration ends when the global sum is zero.

Asynchronous microstep execution has no barrier, so we implement a
message-acknowledgement detector in the spirit of Lai/Tseng/Dong [27]:
every enqueued workset element is a pending message, every processed
element an acknowledgement, and the computation has terminated exactly
when all partitions are idle and no message is unacknowledged.
"""

from __future__ import annotations


class EmptyWorksetVote:
    """Barrier-time vote: all partitions report their next-workset sizes."""

    def __init__(self, parallelism: int):
        self.parallelism = parallelism
        self._votes: dict[int, int] = {}

    def vote(self, partition: int, produced: int):
        if not 0 <= partition < self.parallelism:
            raise ValueError(f"partition {partition} out of range")
        self._votes[partition] = produced

    @property
    def complete(self) -> bool:
        return len(self._votes) == self.parallelism

    def decide(self) -> bool:
        """True iff the iteration should terminate (all votes are zero)."""
        if not self.complete:
            raise RuntimeError(
                f"only {len(self._votes)}/{self.parallelism} partitions voted"
            )
        return all(v == 0 for v in self._votes.values())

    def reset(self):
        self._votes.clear()


class AsyncTerminationDetector:
    """Counts in-flight workset elements across partitions.

    ``sent`` when an element is enqueued (locally or remotely), ``acked``
    when a partition finishes processing it.  ``terminated`` holds when
    every sent element has been acknowledged and all partitions report an
    empty queue — at that point no future work can be generated, because
    work is only generated while processing an element.
    """

    def __init__(self, parallelism: int):
        self.parallelism = parallelism
        self._sent = 0
        self._acked = 0
        self._idle = [True] * parallelism

    def sent(self, count: int = 1):
        self._sent += count

    def acked(self, count: int = 1):
        self._acked += count
        if self._acked > self._sent:
            raise RuntimeError("acknowledged more elements than were sent")

    def set_idle(self, partition: int, idle: bool):
        self._idle[partition] = idle

    @property
    def in_flight(self) -> int:
        return self._sent - self._acked

    @property
    def terminated(self) -> bool:
        return self.in_flight == 0 and all(self._idle)

    # ------------------------------------------------------------------
    # checkpointable state (async recovery, SPMD token ring)

    def snapshot_state(self):
        return (self._sent, self._acked, list(self._idle))

    def restore_state(self, state):
        self._sent, self._acked, idle = state
        self._idle = list(idle)
