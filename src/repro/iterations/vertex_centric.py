"""Pregel on top of the dataflow engine (Section 5.1's template).

    "Every algorithm that can be expressed via a message-passing
    interface can also be expressed as an incremental iteration.
    S(vid, state) represents the graph states, and W(tid, vid, msg)
    represents the messages sent from vertex vid to vertex tid."

This module is that claim as code: :func:`run_vertex_centric` takes a
vertex program written against the same surface as
:class:`~repro.systems.pregel.vertex.VertexContext` and executes it as a
delta iteration — the solution set holds the vertex states, the workset
holds the messages, and one stateful CoGroup implements the superstep.
The identical program object runs unchanged on the BSP engine and here
(see ``tests/integration/test_vertex_centric.py``).

Supported program surface: ``ctx.vertex_id``, ``ctx.state``,
``ctx.is_initial``, ``ctx.num_vertices``, ``ctx.neighbors()``,
``ctx.num_neighbors``, ``ctx.send_message(target, value)``,
``ctx.send_message_to_all_neighbors(value)``, ``ctx.vote_to_halt()``.
``ctx.superstep`` is *not* available — dataflow UDFs are superstep-
agnostic by design; halting is implicit (a vertex runs exactly when it
has messages, and the iteration ends when no messages exist), which is
precisely Pregel's vote-to-halt-with-reactivation semantics.
"""

from __future__ import annotations

from functools import reduce as _reduce

#: sentinel message that activates every vertex in the first superstep
_WAKE = object()


class _DataflowVertexContext:
    """The vertex-program view, backed by the delta iteration."""

    __slots__ = ("vertex_id", "state", "is_initial", "num_vertices",
                 "_graph", "_outbox")

    def __init__(self, graph):
        self._graph = graph
        self.num_vertices = graph.num_vertices
        self.vertex_id = -1
        self.state = None
        self.is_initial = False
        self._outbox = []

    def _reset(self, vertex_id, state, is_initial):
        self.vertex_id = vertex_id
        self.state = state
        self.is_initial = is_initial
        self._outbox = []

    def neighbors(self):
        return self._graph.neighbors(self.vertex_id)

    @property
    def num_neighbors(self) -> int:
        return self._graph.degree(self.vertex_id)

    def send_message(self, target: int, value):
        self._outbox.append((target, value))

    def send_message_to_all_neighbors(self, value):
        outbox = self._outbox
        for target in self.neighbors().tolist():
            outbox.append((target, value))

    def vote_to_halt(self):
        """No-op: halting is implicit — a vertex without messages sleeps."""


def run_vertex_centric(env, graph, compute, initial_state, combiner=None,
                       max_supersteps: int = 1_000_000) -> dict[int, object]:
    """Execute a vertex program as an incremental iteration.

    Parameters mirror :class:`~repro.systems.pregel.PregelMaster`: the
    ``compute(ctx, messages)`` program, the per-vertex ``initial_state``
    function, and an optional associative ``combiner`` applied to a
    vertex's incoming messages before delivery.

    Returns ``{vertex id: final state}``.
    """
    solution0 = env.from_iterable(
        ((v, initial_state(v)) for v in range(graph.num_vertices)),
        name="vertex_states",
    )
    workset0 = env.from_iterable(
        ((v, _WAKE) for v in range(graph.num_vertices)), name="wake_all"
    )
    iteration = env.iterate_delta(
        solution0, workset0, key_fields=0,
        max_iterations=max_supersteps, name="vertex_centric",
    )
    ctx = _DataflowVertexContext(graph)

    def superstep(vid, inbox, stored):
        """One vertex invocation: Δ combines state and messages, emits
        tagged records — ('S', vid, state) updates and ('M', tid, value)
        messages — exactly the (D, W') pair of Section 5.1."""
        _vid, state = stored[0]
        is_initial = any(m[1] is _WAKE for m in inbox)
        values = [m[1] for m in inbox if m[1] is not _WAKE]
        if combiner is not None and len(values) > 1:
            values = [_reduce(combiner, values)]
        ctx._reset(vid, state, is_initial)
        compute(ctx, values)
        if ctx.state != state:
            yield ("S", vid, ctx.state)
        for target, value in ctx._outbox:
            yield ("M", target, value)

    step = iteration.workset.cogroup(
        iteration.solution_set, 0, 0, superstep, name="superstep"
    )
    delta = step.filter(
        lambda r: r[0] == "S", name="state_updates"
    ).map(lambda r: (r[1], r[2]), name="to_solution_schema")
    messages = step.filter(
        lambda r: r[0] == "M", name="messages"
    ).map(lambda r: (r[1], r[2]), name="to_workset_schema")
    result = iteration.close(delta, messages, mode="superstep")
    return dict(result.collect())
