"""The partitioned solution set of an incremental iteration (Section 5).

The solution set ``S`` is a bag of records uniquely identified by a key
``k(s)``.  It lives partitioned by that key across all partitions, each
partition holding a primary hash index, so that lookups from the stateful
solution-join operator and point updates from the delta set are O(1)
(Section 5.3).

The delta union ``S ∪̇ D`` replaces the stored record on key collision;
when a ``should_replace(new, old)`` comparator is supplied, a colliding
record only replaces the stored one if the comparator approves — this is
the CPO comparator of Section 5.1, which guarantees every applied update
is a successor state and discards regressive updates.
"""

from __future__ import annotations

from repro.common.batch import RecordBatch
from repro.common.keys import KeyExtractor
from repro.common.hashing import partition_index


class SolutionSetIndex:
    """Hash-indexed, key-partitioned solution set with counted accesses."""

    def __init__(self, key_fields, parallelism, metrics=None, should_replace=None):
        self.key_fields = key_fields
        self.key = KeyExtractor(key_fields)
        self.parallelism = parallelism
        self.metrics = metrics
        self.should_replace = should_replace
        self._partitions: list[dict] = [{} for _ in range(parallelism)]

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def build(cls, records, key_fields, parallelism, metrics=None,
              should_replace=None, batch_size=None, columnar=False, **extra):
        """Build the index from a flat or partitioned record collection.

        Records are routed to partitions by the stable hash of their key,
        matching the runtime's hash partitioner, so solution-join probes
        arriving over a hash channel land in the right partition.  The
        routing works batch-at-a-time from each chunk's cached key and
        hash vectors (``batch_size=None`` = one chunk); ``columnar``
        computes each chunk's target vector in one vectorized pass over
        the int64 key column when it has one — same targets, same
        insertion order.

        Partitioned input accepts ``list`` or :class:`RecordBatch`
        partitions (a batch-producing channel may hand its chunks over
        unmaterialized).

        ``extra`` keyword arguments pass through to the subclass
        constructor (the disk-backed variant takes its spill manager
        this way).
        """
        index = cls(key_fields, parallelism, metrics, should_replace, **extra)
        if records and isinstance(records[0], (list, RecordBatch)):
            flat = [record for part in records for record in part]
        else:
            flat = list(records)
        if flat:
            partitions = index._partitions
            for chunk in RecordBatch.wrap(flat, key_fields).split(batch_size):
                targets = chunk.partition_targets(
                    parallelism, columnar_mode=columnar
                )
                for k, target, record in zip(
                    chunk.keys, targets, chunk.records
                ):
                    partitions[target][k] = record
        return index

    # ------------------------------------------------------------------
    # reads

    def lookup(self, partition: int, key_value):
        """Partition-local point lookup; counts a solution-set access."""
        if self.metrics is not None:
            self.metrics.add_solution_access()
            checker = self.metrics.invariants
            if checker is not None:
                checker.check_solution_lookup(
                    partition, key_value, self.parallelism
                )
        return self._partitions[partition].get(key_value)

    def lookup_global(self, key_value):
        """Route-by-key lookup (used by drivers that know only the key)."""
        return self.lookup(partition_index(key_value, self.parallelism), key_value)

    def contains(self, key_value) -> bool:
        part = partition_index(key_value, self.parallelism)
        return key_value in self._partitions[part]

    def __len__(self):
        return sum(len(p) for p in self._partitions)

    def partition_sizes(self):
        return [len(p) for p in self._partitions]

    # ------------------------------------------------------------------
    # writes (the ∪̇ operator)

    def apply_record(self, record):
        """Apply one delta record; returns the applied record or ``None``.

        ``None`` means the comparator rejected the update (the stored
        record already supersedes it), so the record contributes neither
        to the solution nor — per Section 5.1 — to the reported delta.

        Every application probes the index exactly once, and that probe
        counts as a solution-set access — including comparator-rejected
        updates, which inspect the stored record without changing it
        (the Figure 2/9 'vertices inspected' series depends on this).
        """
        k = self.key(record)
        part = self._partitions[partition_index(k, self.parallelism)]
        if self.metrics is not None:
            self.metrics.add_solution_access()
        old = part.get(k)
        if old is not None and self.should_replace is not None:
            if not self.should_replace(record, old):
                return None
        part[k] = record
        if self.metrics is not None:
            self.metrics.add_solution_update()
        return record

    def apply_delta(self, records, batch_size=None, columnar=False) -> list:
        """Apply a batch of delta records; returns the accepted records.

        The delta is consumed in record-batch chunks: the replaced-record
        pre-check works from each chunk's cached key and hash vectors
        (``columnar`` vectorizes the partition-target computation over
        the int64 key column when the chunk has one), while the actual
        ∪̇ application still goes through :meth:`apply_record` one
        record at a time — the per-record path stays the oracle the
        audit (and subclass instrumentation) hooks.

        Under invariant checking, every chunk's cached vectors are
        audited against per-record recomputation, ``|S|`` must move by
        exactly accepted-minus-replaced records, and every probed record
        must have been counted as a solution access.
        """
        if not isinstance(records, list):
            records = list(records)
        checker = (
            self.metrics.invariants if self.metrics is not None else None
        )
        applied = []
        replaced = 0
        if checker is None:
            for record in records:
                accepted = self.apply_record(record)
                if accepted is not None:
                    applied.append(accepted)
            return applied
        size_before = len(self)
        accesses_before = self.metrics.solution_accesses
        partitions = self._partitions
        parallelism = self.parallelism
        if records:
            for chunk in RecordBatch.wrap(records, self.key_fields).split(
                batch_size
            ):
                checker.check_batch(chunk)
                targets = chunk.partition_targets(
                    parallelism, columnar_mode=columnar
                )
                for k, target, record in zip(
                    chunk.keys, targets, chunk.records
                ):
                    existing = k in partitions[target]
                    accepted = self.apply_record(record)
                    if accepted is not None:
                        applied.append(accepted)
                        if existing:
                            replaced += 1
        checker.check_delta_application(
            "apply_delta",
            size_before,
            len(self),
            accepted=len(applied),
            replaced=replaced,
            probed=len(records),
            accesses_counted=(
                self.metrics.solution_accesses - accesses_before
            ),
        )
        return applied

    # ------------------------------------------------------------------
    # export

    def to_partitions(self) -> list[list]:
        return [list(part.values()) for part in self._partitions]

    def records(self) -> list:
        return [record for part in self._partitions for record in part.values()]

    def as_dict(self) -> dict:
        """Key -> record over all partitions (test/debug helper)."""
        merged = {}
        for part in self._partitions:
            merged.update(part)
        return merged


class DiskBackedSolutionSetIndex(SolutionSetIndex):
    """A solution set whose partition state lives on disk.

    Each partition's ``dict`` is swapped for a
    :class:`~repro.storage.diskdict.DiskDict` — same first-insertion
    iteration order, same replacement semantics, but records rest in a
    version-stamped append-only log inside the spill session instead of
    the heap.  Every read and write still goes through the base class:
    :meth:`SolutionSetIndex.apply_record` remains the single per-record
    oracle for the ∪̇ operator and the comparator, so an out-of-core
    delta iteration takes exactly the in-memory decision sequence and
    produces bitwise-identical results.

    ``to_partitions`` returns lazy
    :class:`~repro.storage.diskdict.DiskPartitionView` sequences; a
    forward ship passes them through unmaterialized, so exporting the
    converged solution does not re-inflate it into memory.
    """

    def __init__(self, key_fields, parallelism, metrics=None,
                 should_replace=None, manager=None):
        if manager is None:
            raise ValueError(
                "DiskBackedSolutionSetIndex requires a SpillManager "
                "(pass manager=...)"
            )
        super().__init__(key_fields, parallelism, metrics, should_replace)
        from repro.storage.diskdict import DiskDict

        self.manager = manager
        self._partitions = [
            DiskDict(
                manager.session.new_file(
                    prefix=f"solution-p{p}", suffix=".log"
                )
            )
            for p in range(parallelism)
        ]

    def to_partitions(self) -> list:
        from repro.storage.diskdict import DiskPartitionView

        return [DiskPartitionView(part) for part in self._partitions]

    def disk_bytes_written(self) -> int:
        return sum(part.bytes_written for part in self._partitions)

    def close(self) -> None:
        for part in self._partitions:
            part.close()
