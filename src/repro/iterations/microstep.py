"""Static eligibility analysis for microstep execution (Section 5.2).

A delta iteration may execute in microsteps — one workset element at a
time, with updates to the solution set taking effect immediately — only
if its step function Δ satisfies:

1. Every operator on the dynamic data path is record-at-a-time (Map,
   FlatMap, Filter, Match/solution-join, Cross).  Group-at-a-time
   operators need superstep boundaries to delimit their groups.
2. Binary operators have at most one input on the dynamic data path; the
   other input is constant (e.g. the graph topology table N).
3. The dynamic data path is unbranched: each dynamic operator has exactly
   one dynamic consumer, except the delta output, which both terminates
   the update path and seeds the workset path.  In particular the next
   workset may depend on the current workset only through the delta
   element ``d`` (Table 1, MICRO line 5).
4. Updates to the solution set are partition-local: the fields holding
   ``k(s)`` are constant along the path from the solution-set access to
   the delta output, and every operator on that path is either key-less
   or keyed on ``k(s)``.  This is the condition that lets the engine skip
   distributed locking (Section 5.2) and merge deltas immediately
   (Section 5.3).

Field constancy is proven through the operators' declared forwarded
fields (OutputContracts); an undeclared UDF is conservatively assumed to
destroy all fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import MicrostepViolation
from repro.dataflow.contracts import Contract, is_record_at_a_time
from repro.dataflow.graph import dynamic_path_nodes, iteration_body_nodes


@dataclass
class MicrostepReport:
    """Outcome of the analysis plus the compiled pipeline structure."""

    eligible: bool
    reasons: list[str] = field(default_factory=list)
    #: dynamic-path operators from the workset placeholder (exclusive) to
    #: the delta output (inclusive), in execution order
    chain_to_delta: list = field(default_factory=list)
    #: dynamic-path operators from the delta output (exclusive) to the
    #: workset output (inclusive), in execution order
    chain_to_workset: list = field(default_factory=list)
    #: whether delta updates are provably partition-local
    local_updates: bool = False
    #: field positions of the *workset record* that route it to its queue
    #: partition — the solution access's probe key traced backwards
    workset_route_fields: tuple = None

    def raise_if_ineligible(self):
        if not self.eligible:
            raise MicrostepViolation("; ".join(self.reasons))
        return self

    def span_attributes(self) -> dict:
        """The analysis outcome as flat span attributes (tracing)."""
        return {
            "eligible": self.eligible,
            "stages_to_delta": len(self.chain_to_delta),
            "stages_to_workset": len(self.chain_to_workset),
            "local_updates": self.local_updates,
            "route_fields": self.workset_route_fields,
        }


def analyze_microstep(iteration) -> MicrostepReport:
    """Analyze a closed :class:`DeltaIterationNode` for microstep eligibility."""
    report = MicrostepReport(eligible=True)
    dynamic = dynamic_path_nodes(iteration)
    dynamic_ids = {n.id for n in dynamic}
    body_ids = {n.id for n in iteration_body_nodes(iteration)}

    placeholders = {
        iteration.solution_placeholder.id,
        iteration.workset_placeholder.id,
    }

    # Condition 1 & 2: contracts and dynamic-input arity.
    for node in dynamic:
        if node.id in placeholders:
            continue
        if not is_record_at_a_time(node.contract):
            report.eligible = False
            report.reasons.append(
                f"{node.name}: {node.contract.value} is group-at-a-time"
            )
        dyn_inputs = [i for i in node.inputs if i.id in dynamic_ids]
        if node.contract is not Contract.SOLUTION_JOIN and len(dyn_inputs) > 1:
            report.eligible = False
            report.reasons.append(
                f"{node.name}: {len(dyn_inputs)} inputs on the dynamic path"
            )

    # Condition 3: unbranched dynamic path.
    consumers = _dynamic_consumers(iteration, dynamic_ids, body_ids)
    delta = iteration.delta_output
    workset_out = iteration.workset_output
    for node in dynamic:
        outs = consumers.get(node.id, [])
        limit = 1
        if node.id == delta.id and delta.id != workset_out.id:
            # the delta output feeds the workset chain *and* terminates
            limit = 1 if node.id == workset_out.id else 1
        if node.id in placeholders:
            # the solution-set placeholder is consumed only by stateful
            # operators; the workset placeholder must have one consumer
            if node.id == iteration.workset_placeholder.id and len(outs) > 1:
                report.eligible = False
                report.reasons.append("workset consumed by multiple operators")
            continue
        if node.id == delta.id:
            continue  # checked via chain extraction below
        if node.id == workset_out.id:
            continue  # terminal
        if len(outs) > limit:
            report.eligible = False
            report.reasons.append(
                f"{node.name}: dynamic path branches ({len(outs)} consumers)"
            )

    if not report.eligible:
        return report

    # Chain extraction; also verifies W_{i+1} depends on W_i only through d.
    try:
        report.chain_to_delta = _extract_chain(
            iteration.workset_placeholder, delta, consumers, dynamic_ids
        )
        if workset_out.id == delta.id:
            report.chain_to_workset = []
        else:
            report.chain_to_workset = _extract_chain(
                delta, workset_out, consumers, dynamic_ids
            )
    except MicrostepViolation as violation:
        report.eligible = False
        report.reasons.append(str(violation))
        return report

    # Condition 4: key constancy from the solution access to the delta.
    report.local_updates = _updates_are_local(iteration, report.chain_to_delta)
    if not report.local_updates:
        report.eligible = False
        report.reasons.append(
            "solution key not provably constant between the solution-set "
            "access and the delta output (declare forwarded fields)"
        )
        return report

    # Routing: the queues are partitioned like the solution set, so the
    # solution access's probe key must be traceable back to fields of the
    # raw workset record (through the operators preceding the access).
    report.workset_route_fields = _route_fields(iteration,
                                                report.chain_to_delta)
    if report.workset_route_fields is None:
        report.eligible = False
        report.reasons.append(
            "the solution access's probe key cannot be traced back to "
            "workset record fields (declare forwarded fields on the "
            "operators preceding the access)"
        )
    return report


def _route_fields(iteration, chain_to_delta):
    """Probe-key positions of the solution access, in workset coordinates.

    Walks backwards from the first stateful access through the preceding
    chain operators; without an access, traces the solution key back
    from the delta output (deltas route by ``k(s)``).
    """
    access_pos = None
    for pos, node in enumerate(chain_to_delta):
        if node.contract in (Contract.SOLUTION_JOIN, Contract.SOLUTION_COGROUP):
            access_pos = pos
            break
    if access_pos is None:
        fields = iteration.solution_key
        prefix = chain_to_delta
    else:
        fields = chain_to_delta[access_pos].key_fields[0]
        prefix = chain_to_delta[:access_pos]
    chain_ids = {n.id for n in chain_to_delta}
    for node in reversed(prefix):
        dyn_input = _dynamic_input_index(node, chain_to_delta, 0)
        fields = _backward_fields(node, dyn_input, fields)
        if fields is None:
            return None
    return fields


def _backward_fields(node, input_index, fields):
    """Map output field positions back to input positions, or None."""
    if node.contract is Contract.FILTER:
        return fields
    mapping = node.forwarded_fields.get(input_index, {})
    inverse = {dst: src for src, dst in mapping.items()}
    out = []
    for f in fields:
        if f not in inverse:
            return None
        out.append(inverse[f])
    return tuple(out)


def _dynamic_consumers(iteration, dynamic_ids, body_ids):
    consumers: dict[int, list] = {}
    for node in iteration_body_nodes(iteration):
        for inp in node.inputs:
            if inp.id in dynamic_ids and node.id in body_ids:
                consumers.setdefault(inp.id, []).append(node)
    return consumers


def _extract_chain(start, end, consumers, dynamic_ids):
    """Follow the single dynamic consumer edge from ``start`` to ``end``."""
    chain = []
    current = start
    seen = set()
    while current.id != end.id:
        if current.id in seen:
            raise MicrostepViolation("dynamic path contains a repeat")
        seen.add(current.id)
        nexts = [n for n in consumers.get(current.id, []) if n.id in dynamic_ids]
        if len(nexts) != 1:
            raise MicrostepViolation(
                f"{current.name}: expected exactly one dynamic consumer on "
                f"the path to {end.name}, found {len(nexts)}"
            )
        current = nexts[0]
        chain.append(current)
    return chain


def _updates_are_local(iteration, chain_to_delta) -> bool:
    """Prove the solution key is constant from the stateful access to D."""
    solution_key = iteration.solution_key
    # Find the stateful solution access on the chain (if Δ never reads S,
    # updates are trivially local because the delta is routed by key).
    access_pos = None
    for pos, node in enumerate(chain_to_delta):
        if node.contract in (Contract.SOLUTION_JOIN, Contract.SOLUTION_COGROUP):
            access_pos = pos
    if access_pos is None:
        return True

    access = chain_to_delta[access_pos]
    # The access itself must join on k(s) and forward it unchanged.
    probe_key = access.key_fields[0]
    tracked = _forward_fields(access, 0, probe_key)
    if tracked is None:
        return False
    for node in chain_to_delta[access_pos + 1:]:
        dynamic_input = _dynamic_input_index(node, chain_to_delta, access_pos)
        keyed = node.key_fields[dynamic_input] if dynamic_input < len(node.key_fields) else None
        if keyed is not None and keyed != tracked:
            return False
        tracked = _forward_fields(node, dynamic_input, tracked)
        if tracked is None:
            return False
    return tracked == solution_key


def _dynamic_input_index(node, chain, access_pos) -> int:
    """Which input slot of ``node`` carries the dynamic path (default 0)."""
    chain_ids = {n.id for n in chain}
    for idx, inp in enumerate(node.inputs):
        if inp.id in chain_ids:
            return idx
    return 0


def _forward_fields(node, input_index, fields):
    """Map field positions through the node's forwarded-field declaration.

    Returns the output positions of ``fields`` or ``None`` if any field is
    not declared constant.  Filters forward everything by definition.
    """
    if node.contract is Contract.FILTER:
        return fields
    mapping = node.forwarded_fields.get(input_index, {})
    out = []
    for f in fields:
        if f not in mapping:
            return None
        out.append(mapping[f])
    return tuple(out)
