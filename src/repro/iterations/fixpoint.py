"""Engine-independent iteration templates (Table 1 of the paper).

These are the three abstract iteration schemes — FIXPOINT, INCR, MICRO —
as executable higher-order functions.  They serve three purposes: as the
semantic reference the dataflow engines are tested against, as the
vehicle for the CPO convergence checks of Section 2.1, and as runnable
documentation of the paper's Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import NotConvergedError


@dataclass
class FixpointResult:
    """Final state plus the iteration trace."""

    solution: object
    iterations: int
    converged: bool
    #: per-iteration sizes of the working set (empty for FIXPOINT)
    workset_sizes: list[int] = field(default_factory=list)
    #: Kleene chain of partial solutions, recorded when ``trace=True``
    chain: list = field(default_factory=list)


def fixpoint_iterate(step, state, equals=None, max_iterations=10_000,
                     order=None, trace=False, tracer=None) -> FixpointResult:
    """Template FIXPOINT: ``while s != f(s): s = f(s)``.

    Parameters
    ----------
    step:
        The step function ``f``.
    state:
        The initial partial solution ``s``.
    equals:
        Equality test ``t(s, f(s))``; defaults to ``==``.  For continuous
        domains pass an epsilon comparison.
    order:
        Optional :class:`~repro.common.ordering.PartialOrder`; when given,
        every application of ``f`` is checked to produce a successor
        state, raising ``ValueError`` otherwise (the convergence
        precondition of Section 2.1).
    trace:
        Record the full Kleene chain in the result.
    tracer:
        Optional :class:`~repro.observability.Tracer`; the whole template
        run is recorded as one ``template:fixpoint`` span.
    """
    if tracer is not None:
        with tracer.span("template:fixpoint", category="template") as span:
            result = fixpoint_iterate(step, state, equals, max_iterations,
                                      order, trace)
            span.attributes["iterations"] = result.iterations
        return result
    if equals is None:
        equals = lambda a, b: a == b
    chain = [state] if trace else []
    for iteration in range(1, max_iterations + 1):
        new_state = step(state)
        if order is not None and not order.precedes(new_state, state):
            raise ValueError(
                f"step function violated the CPO at iteration {iteration}"
            )
        if trace:
            chain.append(new_state)
        if equals(state, new_state):
            return FixpointResult(new_state, iteration, True, chain=chain)
        state = new_state
    raise NotConvergedError(max_iterations)


def incremental_iterate(delta, update, state, workset, max_iterations=10_000,
                        trace=False, tracer=None) -> FixpointResult:
    """Template INCR: superstep-wise workset iteration.

    Each superstep computes the next workset ``w' = δ(s, w)`` *before*
    applying the updates ``s = u(s, w)``, matching algorithm INCR of
    Table 1 (δ observes the pre-update state).
    """
    if tracer is not None:
        with tracer.span("template:incr", category="template") as span:
            result = incremental_iterate(delta, update, state, workset,
                                         max_iterations, trace)
            span.attributes["iterations"] = result.iterations
        return result
    workset_sizes = []
    chain = [state] if trace else []
    for iteration in range(1, max_iterations + 1):
        if not workset:
            return FixpointResult(
                state, iteration - 1, True,
                workset_sizes=workset_sizes, chain=chain,
            )
        workset_sizes.append(len(workset))
        next_workset = delta(state, workset)
        state = update(state, workset)
        if trace:
            chain.append(state)
        workset = next_workset
    raise NotConvergedError(max_iterations)


def microstep_iterate(delta, update, state, workset, max_steps=10_000_000,
                      trace=False, tracer=None) -> FixpointResult:
    """Template MICRO: one workset element at a time.

    ``arb`` selection is FIFO here (deterministic); the state reflects
    each update immediately, so ``δ`` runs against the freshest state —
    the property that admits asynchronous execution (Section 2.2).
    """
    if tracer is not None:
        with tracer.span("template:micro", category="template") as span:
            result = microstep_iterate(delta, update, state, workset,
                                       max_steps, trace)
            span.attributes["iterations"] = result.iterations
        return result
    from collections import deque

    queue = deque(workset)
    steps = 0
    chain = [state] if trace else []
    while queue:
        if steps >= max_steps:
            raise NotConvergedError(steps)
        element = queue.popleft()
        steps += 1
        state, changed = update(state, element)
        if changed:
            queue.extend(delta(state, element))
            if trace:
                chain.append(state)
    return FixpointResult(state, steps, True, chain=chain)
