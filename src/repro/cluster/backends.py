"""Pluggable execution backends: the simulator and real worker processes.

An :class:`ExecutionBackend` decides *where* a compiled plan (or a
driver program) runs; the plans themselves are backend-agnostic.

* :class:`SimulatedBackend` — the reference: the executor interprets
  all partitions inside the calling process, exactly as before this
  subsystem existed.
* :class:`MultiprocessBackend` — a real shared-nothing engine in
  miniature: one forked worker process per partition, records crossing
  partitions as pickled frames over a :class:`~repro.cluster.fabric.Fabric`,
  supersteps synchronized by collective barriers.  Workers are forked
  *after* plan compilation so UDF closures transfer by inheritance;
  only records are serialized.
* :class:`~repro.cluster.pool.PoolBackend` (in its own module) — the
  persistent variant: workers fork once and serve many jobs, frames
  travel through shared-memory rings, and jobs cross by value through
  the closure-capable :mod:`~repro.cluster.codec`.

Every backend runs the *same* executor code — a worker simply sees
localized datasets (its slot populated, peers' slots empty) and a
:class:`~repro.cluster.context.WorkerCluster` whose collectives reach
its peers.  Per-worker metric collectors are merged superstep-aligned
into the parent's collector, so the merged counters are comparable —
and, by construction, identical — to a simulated run.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_module
import time
import traceback

from repro.cluster.context import LOCAL, WorkerCluster
from repro.cluster.fabric import Fabric


class WorkerCrash(RuntimeError):
    """A worker process died or raised; carries the remote traceback."""


class ExecutionBackend:
    """Interface: run a compiled plan, or a replicated driver program."""

    name = "abstract"
    #: per-worker trace timelines of the last ``run_program`` call, when
    #: the program's collectors carried tracers (multiprocess only)
    last_worker_traces = None

    def execute_plan(self, env, exec_plan):
        """Run ``exec_plan`` for ``env``; returns {sink id: records}.

        Implementations must leave ``env.metrics`` holding the run's
        merged counters and ``env.last_executor`` answering
        ``iteration_summaries``.
        """
        raise NotImplementedError

    def run_program(self, program, parallelism: int):
        """Run ``program(cluster) -> (result, metrics)``.

        Driver-style engines (the Spark-like and Pregel baselines) are
        replicated SPMD-style: every worker executes the same
        deterministic driver, coordinating through the cluster's
        collectives.  Returns the coordinator's ``(result, merged
        metrics)``.
        """
        raise NotImplementedError


class SimulatedBackend(ExecutionBackend):
    """The in-process reference backend."""

    name = "simulated"

    def execute_plan(self, env, exec_plan):
        from repro.runtime.executor import Executor
        telemetry = getattr(env, "telemetry", None)
        if telemetry is not None:
            wall_started = time.perf_counter()
            cpu_started = time.process_time()
            # the env's collector accumulates across jobs: ledger
            # entries bill this job's deltas, not the running totals
            shipped_before = env.metrics.bytes_shipped
            spilled_bytes_before = env.metrics.bytes_spilled
            spilled_records_before = env.metrics.records_spilled
        executor = Executor(env)
        results = executor.run(exec_plan)
        env.last_executor = executor
        if telemetry is not None:
            from repro.observability.telemetry import (
                JobResources,
                read_peak_rss_bytes,
            )
            env.resource_ledger.add(JobResources(
                job=getattr(env, "_job_seq", 0), rank=0,
                wall_s=time.perf_counter() - wall_started,
                cpu_s=time.process_time() - cpu_started,
                peak_rss_bytes=read_peak_rss_bytes(),
                bytes_shipped=env.metrics.bytes_shipped - shipped_before,
                bytes_spilled=(
                    env.metrics.bytes_spilled - spilled_bytes_before
                ),
                records_spilled=(
                    env.metrics.records_spilled - spilled_records_before
                ),
            ))
        return results

    def run_program(self, program, parallelism):
        return program(LOCAL)


class _ExecutorShim:
    """Parent-side stand-in for the workers' executors (introspection)."""

    def __init__(self, iteration_summaries):
        self.iteration_summaries = iteration_summaries


class MultiprocessBackend(ExecutionBackend):
    """One worker process per partition over pickled shipping channels."""

    name = "multiprocess"

    def __init__(self, timeout: float = 120.0):
        self.timeout = timeout

    # ------------------------------------------------------------------

    def execute_plan(self, env, exec_plan):
        from repro.runtime.executor import Executor
        from repro.runtime.metrics import MetricsCollector

        def body(cluster):
            # fresh per-worker collector (＋checker, per the session config)
            env.metrics = MetricsCollector()
            if env.config.check_invariants:
                from repro.runtime.invariants import attach_checker
                attach_checker(env.metrics)
            if env.config.trace:
                from repro.observability import attach_tracer
                attach_tracer(env.metrics, rank=cluster.rank)
            registry = None
            if env.config.telemetry:
                from repro.observability.telemetry import attach_telemetry
                registry = attach_telemetry(env.metrics, rank=cluster.rank)
                wall_started = time.perf_counter()
                cpu_started = time.process_time()
            env.cluster = cluster
            env.last_checkpoint_store = None
            executor = Executor(env)
            results = executor.run(exec_plan)
            payload = {
                "results": results,
                "metrics": env.metrics,
                "summaries": executor.iteration_summaries,
                "checkpoint_store": env.last_checkpoint_store,
            }
            if registry is not None:
                from repro.observability.telemetry import (
                    job_resources_from_metrics,
                )
                env.metrics.telemetry = None
                payload["telemetry"] = registry.snapshot()
                payload["resources"] = job_resources_from_metrics(
                    job=None, rank=cluster.rank,
                    wall_s=time.perf_counter() - wall_started,
                    cpu_s=time.process_time() - cpu_started,
                    metrics=env.metrics,
                )
            return payload

        payloads = _run_spmd(body, env.parallelism, self.timeout)
        return absorb_plan_payloads(env, payloads)

    def run_program(self, program, parallelism):
        def body(cluster):
            result, metrics = program(cluster)
            return {"results": result, "metrics": metrics}

        payloads = _run_spmd(body, parallelism, self.timeout)
        merged, timelines = _merge_worker_metrics(payloads)
        self.last_worker_traces = timelines
        return payloads[0]["results"], merged


def absorb_plan_payloads(env, payloads):
    """Fold per-worker ``execute_plan`` payloads into the parent's env.

    Shared by every SPMD backend (forked-per-job and persistent-pool):
    merges worker collectors superstep-aligned into ``env.metrics``,
    surfaces iteration summaries and checkpoint stores, and rebuilds
    each sink's record list.
    """
    merged, timelines = _merge_worker_metrics(payloads)
    env.last_worker_traces = timelines
    env.metrics.merge(merged, align_supersteps=False)
    env.metrics.verify_invariants()
    registry = getattr(env, "telemetry", None)
    if registry is not None:
        from repro.observability.telemetry import JobResources
        job = getattr(env, "_job_seq", 0)
        # rank order: snapshot merging is deterministic regardless, but
        # the series keeps a stable arrival order this way
        for payload in payloads:
            snapshot = payload.get("telemetry")
            if snapshot is not None:
                registry.merge_snapshot(snapshot)
            resources = payload.get("resources")
            if resources is not None:
                entry = dict(resources)
                entry["job"] = job
                env.resource_ledger.add(JobResources(**entry))
    env.last_executor = _ExecutorShim(payloads[0]["summaries"])
    if payloads[0]["checkpoint_store"] is not None:
        env.last_checkpoint_store = payloads[0]["checkpoint_store"]
    # sinks may be gathered (all records on rank 0) or forwarded
    # (still partitioned); concatenating by rank covers both and
    # reproduces the simulator's partition-scan merge order
    results: dict[int, list] = {}
    for sink_id in payloads[0]["results"]:
        records: list = []
        for payload in payloads:
            records.extend(payload["results"][sink_id])
        results[sink_id] = records
    return results


def _merge_worker_metrics(payloads):
    """Superstep-aligned merge of all workers' collectors into one.

    Returns ``(merged collector, per-worker trace timelines)``; the
    timelines are snapshotted *before* the aligned merge folds every
    worker's span tree into worker 0's, so each worker's own timeline
    survives for the exporters.
    """
    merged = payloads[0]["metrics"]
    if merged is None:  # a program that collects no metrics
        return None, None
    timelines = None
    if merged.tracer is not None:
        timelines = [p["metrics"].tracer.snapshot() for p in payloads]
    for payload in payloads[1:]:
        merged.merge(payload["metrics"], align_supersteps=True)
    return merged, timelines


def _spmd_child(body, fabric, rank, size):
    endpoint = fabric.endpoint(rank)
    try:
        cluster = WorkerCluster(endpoint, size)
        payload = body(cluster)
        metrics = payload.get("metrics")
        if metrics is not None:
            # control-plane traffic (barrier votes, allgathers) that no
            # instrumented site attributed; route it through the hook so
            # the total still equals the endpoint's wire counter
            leftover = endpoint.bytes_sent - metrics.bytes_shipped
            if leftover > 0:
                metrics.add_bytes_shipped(leftover)
            # same reconciliation for the zero-copy column counters:
            # exchanges outside an instrumented ship site (microstep
            # routing) still show up in the job's physical totals
            zc_cols = (
                endpoint.columns_zero_copied - metrics.columns_zero_copied
            )
            zc_bytes = (
                endpoint.bytes_zero_copied - metrics.bytes_zero_copied
            )
            if zc_cols > 0 or zc_bytes > 0:
                metrics.add_zero_copied(max(zc_cols, 0), max(zc_bytes, 0))
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        fabric.results.put(("ok", rank, blob))
    except BaseException:
        fabric.results.put(("error", rank, traceback.format_exc()))


def _run_spmd(body, size, timeout):
    """Fork ``size`` workers running ``body(cluster)``; gather payloads."""
    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError as exc:  # pragma: no cover - non-POSIX platforms
        raise RuntimeError(
            "the multiprocess backend needs the 'fork' start method "
            "(UDF closures transfer by inheritance, not pickling)"
        ) from exc
    fabric = Fabric(size, mp_context, timeout)
    workers = []
    for rank in range(size):
        process = mp_context.Process(
            target=_spmd_child, args=(body, fabric, rank, size), daemon=True
        )
        process.start()
        workers.append(process)

    payloads: dict[int, dict] = {}
    # overall gather deadline: generous slack over the fabric timeout so
    # in-worker FabricTimeouts surface first, but the parent can never
    # spin forever on a worker that will not report
    deadline = time.monotonic() + timeout * 1.5 + 5.0
    try:
        while len(payloads) < size:
            try:
                kind, rank, data = fabric.results.get(timeout=0.25)
            except queue_module.Empty:
                # a worker that is dead without a result is a crash no
                # matter its exit code — a silent ``exit(0)`` would
                # otherwise hang this gather loop forever
                dead = [
                    w.name for r, w in enumerate(workers)
                    if r not in payloads and not w.is_alive()
                ]
                if dead:
                    raise WorkerCrash(
                        f"worker(s) {', '.join(dead)} died without "
                        "reporting a result"
                    )
                if time.monotonic() >= deadline:
                    missing = sorted(
                        r for r in range(size) if r not in payloads
                    )
                    raise WorkerCrash(
                        f"gave up waiting for worker(s) {missing} after "
                        f"{timeout:.0f}s: no result and no exit"
                    )
                continue
            if kind == "error":
                raise WorkerCrash(
                    f"worker {rank} failed:\n{data}"
                )
            payloads[rank] = pickle.loads(data)
    finally:
        reap_workers(workers, incomplete=len(payloads) < size)
        fabric.close()
    return [payloads[rank] for rank in range(size)]


def reap_workers(workers, incomplete: bool = True,
                 join_timeout: float = 5.0) -> None:
    """Terminate and join worker processes, escalating to ``kill``.

    ``join(timeout)`` alone can time out silently — a worker stuck in an
    unkillable syscall or a queue feeder thread would leak as a zombie
    across bench runs.  Any worker still alive after the join window is
    killed (SIGKILL) and joined again.
    """
    for worker in workers:
        if worker.is_alive() and incomplete:
            worker.terminate()
    for worker in workers:
        worker.join(timeout=join_timeout)
        if worker.is_alive():
            worker.kill()
            worker.join(timeout=join_timeout)


#: registry for the ``Environment(backend=...)`` / CLI string spellings;
#: :mod:`repro.cluster.pool` registers ``"pool"`` on import
BACKENDS = {
    "simulated": SimulatedBackend,
    "multiprocess": MultiprocessBackend,
}


def resolve_backend(spec) -> ExecutionBackend:
    """``None`` → simulator; a name → registry lookup; an instance → itself."""
    if spec is None:
        return SimulatedBackend()
    if isinstance(spec, str):
        if spec not in BACKENDS:
            # the pool backend lives in its own module (it imports this
            # one); pull it in so its registration is always visible
            import repro.cluster.pool  # noqa: F401
        try:
            return BACKENDS[spec]()
        except KeyError:
            raise ValueError(
                f"unknown backend {spec!r}; available: "
                f"{', '.join(sorted(BACKENDS))}"
            ) from None
    return spec
