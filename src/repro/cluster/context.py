"""Cluster contexts: where one piece of code runs, and who its peers are.

The same executor / driver / master code runs in two settings:

* the **local** setting — one process simulates all ``parallelism``
  partitions (``LOCAL``, a :class:`LocalCluster`), collectives are
  identities and datasets at rest hold every partition's records;
* the **SPMD** setting — one forked worker process per partition
  (:class:`WorkerCluster`); datasets at rest are *localized* (the
  length-``parallelism`` partition list has only slot ``rank``
  populated), and cross-partition movement happens through real
  collectives over the pickled-frame fabric.

The collectives are designed so that the SPMD execution is *bitwise
identical* to the simulator in every record ordering: ``exchange``
returns frames indexed by source rank, and every merge concatenates in
ascending rank order — exactly the partition-scan order the in-process
channels use.  That property is what lets the differential audit hold
the multiprocess backend to identical logical counters and results.
"""

from __future__ import annotations

import pickle

from repro.common import columns as columns_mod

#: how many records the row-run sizer pickles to estimate bytes/record
_SIZE_SAMPLE = 32


def _estimate_record_bytes(run) -> int:
    """Per-record pickled size, estimated from an evenly spaced sample.

    Replaces the old pickle-the-whole-run size probe: one small sample
    pickle instead of serializing every record twice.
    """
    if len(run) <= _SIZE_SAMPLE:
        sample = run
    else:
        sample = run[:: len(run) // _SIZE_SAMPLE][:_SIZE_SAMPLE]
    blob = pickle.dumps(sample, protocol=pickle.HIGHEST_PROTOCOL)
    return max(1, len(blob) // len(sample))


class ClusterContext:
    """Interface shared by the local simulator and SPMD workers."""

    is_local: bool
    rank: int
    size: int

    @property
    def is_coordinator(self) -> bool:
        return self.rank == 0

    @property
    def bytes_sent(self) -> int:
        """Serialized bytes this context has put on the wire so far.

        The local setting never serializes, so the base reading is 0;
        instrumentation samples this before/after a collective to
        attribute wire bytes to the enclosing superstep.
        """
        return 0

    @property
    def columns_zero_copied(self) -> int:
        """Fixed-width column buffers shipped as raw shm memcpy (no
        pickle on the payload path); always 0 in the local setting."""
        return 0

    @property
    def bytes_zero_copied(self) -> int:
        """Payload bytes of those zero-copied column buffers."""
        return 0

    def owned_partitions(self, parallelism: int):
        raise NotImplementedError

    def localize(self, partitions):
        """Restrict a full partition list to the slots this context owns."""
        raise NotImplementedError

    def exchange(self, frames, batch_size=None, max_frame_bytes=None,
                 columnar=False, key_fields=None):
        """All-to-all: send ``frames[t]`` to rank ``t``; return the frames
        received, indexed by source rank (own frame included in place).

        With ``batch_size`` / ``max_frame_bytes`` set, each frame moves
        as a stream of bounded chunks instead of one monolithic pickle
        (see :meth:`WorkerCluster.exchange`); the reassembled result is
        identical either way.  ``columnar`` ships fixed-width chunks as
        raw column buffers (struct-of-arrays framing, zero payload
        pickling on the shm path); ``key_fields`` tags those frames so
        receivers can rebuild keyed batches without re-extracting."""
        raise NotImplementedError

    def allreduce_sum(self, value):
        raise NotImplementedError

    def allgather(self, value):
        """Every rank's ``value``, indexed by rank."""
        raise NotImplementedError

    def merge_global(self, partitions):
        """Flatten a dataset at rest into one global record list, in
        partition order, visible to every rank."""
        raise NotImplementedError


class LocalCluster(ClusterContext):
    """The in-process setting: one context owns every partition."""

    is_local = True
    rank = 0
    size = 1

    def owned_partitions(self, parallelism):
        return range(parallelism)

    def localize(self, partitions):
        return partitions

    def exchange(self, frames, batch_size=None, max_frame_bytes=None,
                 columnar=False, key_fields=None):
        raise RuntimeError("the local cluster has no peers to exchange with")

    def allreduce_sum(self, value):
        return value

    def allgather(self, value):
        return [value]

    def merge_global(self, partitions):
        from repro.runtime import channels
        return channels.merge(partitions)


#: the singleton local context; ``ExecutionEnvironment`` and the engine
#: drivers default to it
LOCAL = LocalCluster()


class WorkerCluster(ClusterContext):
    """One SPMD worker's context: rank ``r`` of ``size`` forked peers.

    Collective calls are matched across workers by a monotonically
    increasing operation tag; since every worker executes the same
    deterministic program, the n-th collective on one rank pairs with
    the n-th on every other — lockstep without a coordinator.
    """

    is_local = False

    def __init__(self, endpoint, size: int):
        self.endpoint = endpoint
        self.rank = endpoint.rank
        self.size = size
        self._op_seq = 0

    def _next_tag(self) -> int:
        self._op_seq += 1
        return self._op_seq

    @property
    def bytes_sent(self) -> int:
        return self.endpoint.bytes_sent

    @property
    def columns_zero_copied(self) -> int:
        return self.endpoint.columns_zero_copied

    @property
    def bytes_zero_copied(self) -> int:
        return self.endpoint.bytes_zero_copied

    def owned_partitions(self, parallelism):
        return (self.rank,)

    def localize(self, partitions):
        return [
            list(part) if index == self.rank else []
            for index, part in enumerate(partitions)
        ]

    # ------------------------------------------------------------------
    # collectives

    def exchange(self, frames, batch_size=None, max_frame_bytes=None,
                 columnar=False, key_fields=None):
        """All-to-all exchange; optionally chunked and columnar.

        The monolithic mode (both bounds ``None``) pickles each target
        frame whole — one fabric frame per peer.  The chunked mode
        splits each target frame into runs of ``batch_size`` records and
        closes each stream with an ``("e", n_chunks)`` terminator the
        receiver verifies.  Chunks of one ``(source, tag)`` stream
        arrive in FIFO order, so reassembly by concatenation reproduces
        the monolithic result exactly.

        Sizing against ``max_frame_bytes`` never pickles a probe copy:

        * **columnar** runs (``columnar=True`` and every column of the
          chunk is fixed-width) know their payload size exactly from
          ``rows * sum(itemsize)``, so oversize chunks are re-split by
          row-count arithmetic and ship as raw column buffers
          (:meth:`~repro.cluster.fabric.Endpoint.send_columns` — zero
          payload pickling on the shm path);
        * **row** runs are sliced up front from a sampled per-record
          pickle estimate and each slice is pickled exactly once.  An
          estimate miss only makes a frame land off the target size —
          the fabric ships any blob (multi-slot shm or inline), so the
          bound is a framing target, not a correctness limit.
        """
        if len(frames) != self.size:
            raise ValueError(
                f"exchange needs one frame per worker ({self.size}), "
                f"got {len(frames)}"
            )
        tag = self._next_tag()
        chunked = (
            batch_size is not None
            or max_frame_bytes is not None
            or columnar
        )
        for target in range(self.size):
            if target == self.rank:
                continue
            if chunked:
                self._send_chunked(
                    target, tag, frames[target], batch_size,
                    max_frame_bytes, columnar, key_fields,
                )
            else:
                self.endpoint.send(target, tag, frames[target])
        received = []
        for source in range(self.size):
            if source == self.rank:
                received.append(list(frames[self.rank]))
            elif chunked:
                received.append(self._recv_chunked(source, tag))
            else:
                received.append(self.endpoint.recv(source, tag))
        return received

    def _send_chunked(self, target, tag, frame, batch_size, max_frame_bytes,
                      columnar=False, key_fields=None):
        frame = list(frame)
        sent = 0
        if columnar and frame:
            from repro.common.batch import RecordBatch

            wrapped = RecordBatch.wrap(frame, key_fields)
            for chunk in wrapped.split(batch_size):
                sent += self._send_chunk(target, tag, chunk, max_frame_bytes)
        elif frame:
            if batch_size is None or batch_size >= len(frame):
                runs = [frame]
            else:
                runs = [
                    frame[i:i + batch_size]
                    for i in range(0, len(frame), batch_size)
                ]
            for run in runs:
                sent += self._send_run(target, tag, run, max_frame_bytes)
        self.endpoint.send(target, tag, ("e", sent))

    def _send_chunk(self, target, tag, chunk, max_frame_bytes) -> int:
        """Ship one :class:`RecordBatch` chunk, columnar when possible.

        All-fixed-width chunks go out as raw column buffers; their exact
        payload size is linear in the row count, so an oversize chunk is
        re-split arithmetically — no probe serialization.  Chunks with
        any object column fall back to the pickled row run.
        """
        layout = chunk.columns()
        length = len(chunk)
        if layout is not None and length:
            _length, cols = layout
            nbytes = columns_mod.frame_nbytes(cols, length)
            if nbytes is not None:
                if (
                    max_frame_bytes is not None
                    and nbytes > max_frame_bytes
                    and length > 1
                ):
                    pieces = -(-nbytes // max_frame_bytes)
                    rows = max(1, -(-length // pieces))
                    if rows < length:
                        sent = 0
                        for sub in chunk.split(rows):
                            sent += self._send_chunk(
                                target, tag, sub, max_frame_bytes
                            )
                        return sent
                header, buffers = columns_mod.encode_frame(
                    cols, length, chunk.key_fields
                )
                self.endpoint.send_columns(target, tag, header, buffers)
                return 1
        return self._send_run(target, tag, chunk.records, max_frame_bytes)

    def _send_run(self, target, tag, run, max_frame_bytes) -> int:
        if max_frame_bytes is not None and len(run) > 1:
            per_record = _estimate_record_bytes(run)
            rows = max(1, max_frame_bytes // per_record)
            if rows < len(run):
                sent = 0
                for i in range(0, len(run), rows):
                    blob = pickle.dumps(
                        ("c", run[i:i + rows]),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                    self.endpoint.send_raw(target, tag, blob)
                    sent += 1
                return sent
        blob = pickle.dumps(("c", run), protocol=pickle.HIGHEST_PROTOCOL)
        self.endpoint.send_raw(target, tag, blob)
        return 1

    def _recv_chunked(self, source, tag) -> list:
        records: list = []
        chunks = 0
        while True:
            message = self.endpoint.recv(source, tag)
            kind = message[0]
            if kind == "e":
                if message[1] != chunks:
                    raise RuntimeError(
                        f"chunked exchange stream from worker {source} "
                        f"announced {message[1]} chunks but {chunks} arrived"
                    )
                return records
            if kind == "cols":
                length, cols, _key_fields = columns_mod.decode_frame(
                    message[1], message[2]
                )
                records.extend(columns_mod.materialize_rows(cols, length))
            else:
                records.extend(message[1])
            chunks += 1

    def allgather(self, value):
        tag = self._next_tag()
        for target in range(self.size):
            if target != self.rank:
                self.endpoint.send(target, tag, value)
        return [
            value if source == self.rank else self.endpoint.recv(source, tag)
            for source in range(self.size)
        ]

    def allreduce_sum(self, value):
        return sum(self.allgather(value))

    def merge_global(self, partitions):
        merged = []
        for records in self.allgather(list(partitions[self.rank])):
            merged.extend(records)
        return merged

    # ------------------------------------------------------------------
    # point-to-point (used by the async token ring)

    def send_to(self, target: int, payload, tag: str = "p2p"):
        self.endpoint.send(target, tag, payload)

    def recv_from(self, source: int, tag: str = "p2p"):
        return self.endpoint.recv(source, tag)
