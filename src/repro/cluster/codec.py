"""Job codec: pickling jobs whose closures stock pickle rejects.

The multiprocess backend forks workers *after* plan compilation, so UDF
closures transfer to them by address-space inheritance and never meet a
pickler.  A persistent worker pool cannot rely on that trick: its
workers are forked once and then receive successive jobs over a queue,
so every job — driver bodies, plan UDFs, termination predicates, CPO
comparators — must cross the process boundary *by value*.

Stock pickle refuses lambdas and nested functions (it serializes
functions by importable reference).  :class:`JobPickler` extends it with
a by-value fallback: a function that cannot be found under its
``module.qualname`` is reduced to its marshalled code object, the name
of its defining module (whose dict is re-bound as the function's
globals on the worker — under the ``fork`` start method the module is
either already imported or importable from the inherited ``sys.path``),
and its defaults / closure-cell contents / function attributes.  Cell
contents are restored through the pickle *state* step so that recursive
closures (a cell pointing back at its own function) round-trip.

Everything else — records, plans, configs, graphs, metric collectors —
pickles exactly as before.  ``loads`` is plain :func:`pickle.loads`:
the by-value encoding bottoms out in module-level rebuild helpers that
are themselves importable.
"""

from __future__ import annotations

import builtins
import importlib
import io
import marshal
import pickle
import sys
import types


class _EmptyCell:
    """Sentinel for a closure cell whose contents were never set."""


_EMPTY_CELL = _EmptyCell()


def _function_globals(module_name: str) -> dict:
    """The globals dict a rebuilt function should execute under.

    Prefer the live module (already imported in a forked worker, or
    importable from the inherited path); fall back to a bare namespace
    with builtins so pure lambdas still run.
    """
    if module_name:
        module = sys.modules.get(module_name)
        if module is None:
            try:
                module = importlib.import_module(module_name)
            except Exception:
                module = None
        if module is not None:
            return module.__dict__
    return {"__builtins__": builtins.__dict__}


def _rebuild_function(code_blob: bytes, module_name: str, qualname: str):
    """Recreate a by-value function shell; state is applied separately."""
    code = marshal.loads(code_blob)
    closure = tuple(types.CellType() for _ in code.co_freevars)
    fn = types.FunctionType(
        code, _function_globals(module_name), code.co_name, None, closure
    )
    fn.__qualname__ = qualname
    fn.__module__ = module_name
    return fn


def _apply_function_state(fn, state):
    fn.__defaults__ = state["defaults"]
    fn.__kwdefaults__ = state["kwdefaults"]
    for cell, value in zip(fn.__closure__ or (), state["cells"]):
        if value is not _EMPTY_CELL:
            cell.cell_contents = value
    attrs = state["attrs"]
    if attrs:
        fn.__dict__.update(attrs)


def _importable(fn) -> bool:
    """True when stock pickle's save-by-reference would round-trip ``fn``."""
    module_name = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", "")
    if module_name is None or "<locals>" in qualname or "<lambda>" in qualname:
        return False
    module = sys.modules.get(module_name)
    if module is None:
        return False
    obj = module
    try:
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except AttributeError:
        return False
    return obj is fn


def _cell_contents(cell):
    try:
        return cell.cell_contents
    except ValueError:  # pragma: no cover - unset cell (rare)
        return _EMPTY_CELL


class JobPickler(pickle.Pickler):
    """Pickler with a by-value fallback for non-importable functions."""

    def reducer_override(self, obj):
        if isinstance(obj, types.FunctionType) and not _importable(obj):
            try:
                code_blob = marshal.dumps(obj.__code__)
            except ValueError:  # pragma: no cover - unmarshallable consts
                return NotImplemented
            state = {
                "defaults": obj.__defaults__,
                "kwdefaults": obj.__kwdefaults__,
                "cells": [
                    _cell_contents(cell) for cell in obj.__closure__ or ()
                ],
                "attrs": dict(obj.__dict__) if obj.__dict__ else None,
            }
            return (
                _rebuild_function,
                (code_blob, obj.__module__ or "", obj.__qualname__),
                state,
                None,
                None,
                _apply_function_state,
            )
        return NotImplemented


def dumps(obj) -> bytes:
    """Serialize a job (closures included) for a pool worker."""
    buffer = io.BytesIO()
    JobPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buffer.getvalue()


#: jobs decode with plain pickle — the by-value encoding bottoms out in
#: this module's importable rebuild helpers
loads = pickle.loads
