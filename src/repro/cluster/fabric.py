"""Inter-worker transport for the multiprocess backend.

A :class:`Fabric` is created by the parent process *before* forking: it
owns one mailbox queue per worker plus a results queue back to the
parent.  Each forked worker obtains its :class:`Endpoint`, through which
every payload crossing a process boundary travels as a pickled frame —
the serialization cost the in-process simulator never pays.

Frames are tagged ``(source, tag)`` so that out-of-order arrivals (a
fast peer racing ahead to the next collective) are buffered rather than
misdelivered; within one ``(source, tag)`` stream FIFO order is
preserved end to end, because ``multiprocessing.Queue`` is FIFO and the
receive buffer is a deque per stream.
"""

from __future__ import annotations

import pickle
import queue as queue_module
import time
from collections import deque


class FabricTimeout(RuntimeError):
    """A worker waited too long for a peer's frame (peer likely dead)."""


class Fabric:
    """Parent-side factory for one worker cluster's mailboxes."""

    def __init__(self, size: int, mp_context, timeout: float = 120.0):
        self.size = size
        self.timeout = timeout
        self._mailboxes = [mp_context.Queue() for _ in range(size)]
        #: workers report completion payloads / errors here
        self.results = mp_context.Queue()

    def endpoint(self, rank: int) -> "Endpoint":
        return Endpoint(rank, self._mailboxes, self.timeout)

    def close(self):
        for q in self._mailboxes:
            q.close()
        self.results.close()


class Endpoint:
    """One worker's view of the fabric: tagged send/recv of pickled frames."""

    def __init__(self, rank: int, mailboxes, timeout: float):
        self.rank = rank
        self._mailboxes = mailboxes
        self.timeout = timeout
        #: frames that arrived before anyone asked for them, per stream
        self._pending: dict[tuple, deque] = {}
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0

    def send(self, target: int, tag, payload):
        self.send_raw(
            target, tag,
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def send_raw(self, target: int, tag, blob: bytes):
        """Send an already-pickled frame.

        The chunked exchange pickles a chunk once to probe its wire
        size against ``max_frame_bytes``; sending the probed blob
        directly avoids pickling twice.  ``blob`` must unpickle to the
        frame payload, exactly as :meth:`send` would have produced.
        """
        if target == self.rank:
            raise ValueError("a worker does not send frames to itself")
        self.bytes_sent += len(blob)
        self.frames_sent += 1
        self._mailboxes[target].put((self.rank, tag, blob))

    def recv(self, source: int, tag):
        """Block until the next frame of stream ``(source, tag)`` arrives."""
        key = (source, tag)
        deadline = time.monotonic() + self.timeout
        inbox = self._mailboxes[self.rank]
        while True:
            bucket = self._pending.get(key)
            if bucket:
                return bucket.popleft()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise FabricTimeout(
                    f"worker {self.rank} timed out after {self.timeout:.0f}s "
                    f"waiting for frame {tag!r} from worker {source}"
                )
            try:
                src, frame_tag, blob = inbox.get(
                    timeout=min(remaining, 1.0)
                )
            except queue_module.Empty:
                continue
            self.bytes_received += len(blob)
            self.frames_received += 1
            self._pending.setdefault((src, frame_tag), deque()).append(
                pickle.loads(blob)
            )
