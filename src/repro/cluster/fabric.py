"""Inter-worker transport: shared-memory frame rings + control queues.

A :class:`Fabric` is created by the parent process *before* forking: it
owns one mailbox queue per worker, a results queue back to the parent,
and — the data plane — one :class:`FrameRing` of reusable
``multiprocessing.shared_memory`` slots per worker.  Because the rings
are allocated pre-fork, every worker inherits the same mappings and a
frame crosses processes as **one memcpy into a shared slot plus a tiny
pickled control message**, instead of being squeezed through a pipe in
64 KiB feeder-thread writes.  Small frames (below
``SHM_THRESHOLD_BYTES``) still ride the control queue inline — at that
size the queue copy is cheaper than slot bookkeeping.

**Ownership handoff.**  A ring's slots belong to their owning rank: the
owner acquires free slots, writes the frame, and announces
``(slots, nbytes)`` to the receiver's mailbox; the receiver deserializes
straight out of shared memory and posts an ack back to the owner's
mailbox, returning the slots to the owner's free list.  A slot is never
rewritten before its ack arrives.  Frames larger than one slot span
several; frames larger than the whole ring fall back to the inline
path, so any size is always deliverable.

**Overlap.**  Sends are posted without waiting (the superstep's
exchange posts every outgoing frame before its first receive), and
:meth:`Endpoint.recv` drains *everything* already queued — acks and
early frames from fast peers — each time it touches the mailbox, so
communication progresses while the worker computes.

**Job epochs.**  Persistent pool workers run many jobs over one fabric.
Every frame carries the sender's job epoch; frames from a superseded
job (a crashed peer's leftovers) are dropped on receipt — their slots
still acked — instead of being misdelivered into the next job's tag
space.

Frames are tagged ``(source, tag)`` so that out-of-order arrivals (a
fast peer racing ahead to the next collective) are buffered rather than
misdelivered; within one ``(source, tag)`` stream FIFO order is
preserved end to end, because ``multiprocessing.Queue`` is FIFO and the
receive buffer is a deque per stream.
"""

from __future__ import annotations

import pickle
import queue as queue_module
import time
from collections import deque
from multiprocessing import shared_memory


class FabricTimeout(RuntimeError):
    """A worker waited too long for a peer's frame (peer likely dead)."""


def _parse_columns_wire(view) -> tuple:
    """Split a columnar frame's contiguous wire bytes into its pieces.

    Inverse of the layout :meth:`Endpoint.send_columns` writes:
    ``[4B header_len][header][4B buf_len][buf]...``.  Every piece is
    copied to fresh ``bytes`` because the backing shm slot is recycled
    as soon as the frame is acked.
    """
    header_len = int.from_bytes(view[:4], "big")
    pos = 4
    header = bytes(view[pos: pos + header_len])
    pos += header_len
    buffers = []
    total = len(view)
    while pos < total:
        buf_len = int.from_bytes(view[pos: pos + 4], "big")
        pos += 4
        buffers.append(bytes(view[pos: pos + buf_len]))
        pos += buf_len
    return ("cols", header, buffers)


#: pickled frames at least this large travel through a shared-memory
#: slot; smaller ones ride the control queue inline
SHM_THRESHOLD_BYTES = 16 << 10

#: default capacity of one ring slot
DEFAULT_SLOT_BYTES = 1 << 20


class FrameRing:
    """One rank's ring of reusable shared-memory slots (created pre-fork).

    Only the owning rank writes to (or acquires) its slots; every other
    rank may map them read-only to deserialize an announced frame.  The
    free list is meaningful in the owner's process only — each forked
    worker mutates its inherited copy of its *own* ring.
    """

    def __init__(self, owner: int, slots: int, slot_bytes: int):
        self.owner = owner
        self.slot_bytes = slot_bytes
        self._segments = [
            shared_memory.SharedMemory(create=True, size=slot_bytes)
            for _ in range(slots)
        ]
        self._free = list(range(slots))
        self._destroyed = False

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def free_slots(self) -> int:
        return len(self._free)

    def try_acquire(self, count: int):
        """Take ``count`` free slots, or ``None`` if not enough are free."""
        if count > len(self._free):
            return None
        taken = self._free[:count]
        del self._free[:count]
        return taken

    def release(self, slots):
        self._free.extend(slots)

    def write(self, slot: int, data) -> None:
        self._segments[slot].buf[: len(data)] = data

    def write_at(self, slot: int, offset: int, data) -> None:
        """Copy ``data`` into ``slot`` starting at ``offset``.

        Columnar frames lay several length-prefixed pieces (header,
        then one raw buffer per column) contiguously across a slot run,
        so the writer needs sub-slot positioning; :meth:`write` keeps
        covering the whole-blob path.
        """
        self._segments[slot].buf[offset: offset + len(data)] = data

    def view(self, slot: int, nbytes: int) -> memoryview:
        return self._segments[slot].buf[:nbytes]

    def destroy(self):
        """Unlink every segment; idempotent and safe after partial teardown."""
        if self._destroyed:
            return
        self._destroyed = True
        for segment in self._segments:
            try:
                segment.close()
            except Exception:  # pragma: no cover - exported buffers
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            except Exception:  # pragma: no cover - defensive
                pass


class Fabric:
    """Parent-side factory for one worker cluster's transport."""

    def __init__(self, size: int, mp_context, timeout: float = 120.0,
                 slot_bytes: int = DEFAULT_SLOT_BYTES,
                 slots_per_worker: int | None = None,
                 use_shared_memory: bool = True):
        self.size = size
        self.timeout = timeout
        self._mailboxes = [mp_context.Queue() for _ in range(size)]
        #: workers report completion payloads / errors here
        self.results = mp_context.Queue()
        self._rings = None
        if use_shared_memory and size > 1:
            if slots_per_worker is None:
                # one all-to-all posts size-1 frames before any ack can
                # return; double that so the next exchange can overlap
                slots_per_worker = max(4, 2 * (size - 1))
            rings: list[FrameRing] = []
            try:
                for rank in range(size):
                    rings.append(FrameRing(rank, slots_per_worker,
                                           slot_bytes))
                self._rings = rings
            except (OSError, ValueError):  # pragma: no cover - no /dev/shm
                for ring in rings:
                    ring.destroy()
                self._rings = None
        self._closed = False

    def endpoint(self, rank: int) -> "Endpoint":
        return Endpoint(rank, self._mailboxes, self.timeout,
                        rings=self._rings)

    def close(self):
        """Tear down queues and rings.

        Idempotent, and safe after a *partial* teardown — crashed
        workers, queues with unread frames, rings whose segments were
        already unlinked — so crash-handling paths can always call it.
        """
        if self._closed:
            return
        self._closed = True
        for q in [*self._mailboxes, self.results]:
            try:
                q.cancel_join_thread()
            except Exception:  # pragma: no cover - defensive
                pass
            try:
                q.close()
            except Exception:  # pragma: no cover - defensive
                pass
        if self._rings:
            for ring in self._rings:
                ring.destroy()


class Endpoint:
    """One worker's view of the fabric: tagged send/recv of frames."""

    def __init__(self, rank: int, mailboxes, timeout: float, rings=None,
                 shm_threshold: int = SHM_THRESHOLD_BYTES):
        self.rank = rank
        self._mailboxes = mailboxes
        self.timeout = timeout
        self._rings = rings
        self._ring = rings[rank] if rings is not None else None
        self.shm_threshold = shm_threshold
        #: the current job's epoch; frames from other epochs are dropped
        self.epoch = 0
        #: frames that arrived before anyone asked for them, per stream
        self._pending: dict[tuple, deque] = {}
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0
        #: fixed-width column buffers that reached the wire as raw
        #: memcpy into a shared slot — never pickled (columnar frames
        #: on the shm path only; inline fallbacks don't count)
        self.columns_zero_copied = 0
        self.bytes_zero_copied = 0
        #: live metric registry when telemetry is enabled, else None
        self.telemetry = None
        #: shm bytes announced but not yet acked, keyed by lead slot
        self._inflight: dict[int, int] = {}
        self._inflight_bytes = 0

    def enable_telemetry(self, registry) -> None:
        """Attach a registry; transport counters get a ``rank`` label."""
        self.telemetry = registry
        labels = {"rank": self.rank}
        self._t_frames_shm = registry.counter("fabric.frames_shm", labels)
        self._t_frames_inline = registry.counter(
            "fabric.frames_inline", labels
        )
        self._t_inline_fallbacks = registry.counter(
            "fabric.inline_fallbacks", labels
        )
        self._t_bytes_sent = registry.counter("fabric.bytes_sent", labels)
        self._t_columns_zero_copied = registry.counter(
            "fabric.columns_zero_copied", labels
        )
        self._t_bytes_zero_copied = registry.counter(
            "fabric.bytes_zero_copied", labels
        )

    def telemetry_probe(self) -> dict:
        """Gauge samples for the registry's superstep-boundary poll."""
        ring_slots = len(self._ring) if self._ring is not None else 0
        free = self._ring.free_slots if self._ring is not None else 0
        return {
            "fabric.ring_slots": ring_slots,
            "fabric.ring_free_slots": free,
            "fabric.ring_occupancy":
                (ring_slots - free) / ring_slots if ring_slots else 0.0,
            "fabric.bytes_in_flight": self._inflight_bytes,
            "fabric.pending_frames":
                sum(len(bucket) for bucket in self._pending.values()),
            "fabric.columns_zero_copied": self.columns_zero_copied,
            "fabric.bytes_zero_copied": self.bytes_zero_copied,
        }

    def begin_job(self, epoch) -> None:
        """Reset per-job state before running a new job on this endpoint.

        Counters restart at zero, buffered frames from any previous
        (possibly aborted) job are discarded, and the epoch advances so
        in-flight leftovers are dropped on receipt — their shared-memory
        slots still acked back to their owners.
        """
        self.epoch = epoch
        self._pending.clear()
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.columns_zero_copied = 0
        self.bytes_zero_copied = 0

    # ------------------------------------------------------------------
    # sending

    def send(self, target: int, tag, payload):
        self.send_raw(
            target, tag,
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def send_raw(self, target: int, tag, blob: bytes):
        """Send an already-pickled frame.

        The chunked exchange pickles each sized run exactly once and
        hands the blob straight here.  ``blob`` must unpickle to the
        frame payload, exactly as :meth:`send` would have produced.
        """
        if target == self.rank:
            raise ValueError("a worker does not send frames to itself")
        self.bytes_sent += len(blob)
        self.frames_sent += 1
        if self.telemetry is not None:
            self._t_bytes_sent.inc(len(blob))
        if self._ring is not None and len(blob) >= self.shm_threshold:
            slots = self._acquire_slots(len(blob))
            if slots is not None:
                view = memoryview(blob)
                size = self._ring.slot_bytes
                for index, slot in enumerate(slots):
                    self._ring.write(slot, view[index * size:
                                                (index + 1) * size])
                if self.telemetry is not None:
                    self._t_frames_shm.inc()
                    self._inflight[slots[0]] = len(blob)
                    self._inflight_bytes += len(blob)
                self._mailboxes[target].put(
                    ("s", self.epoch, self.rank, tag, len(blob), slots)
                )
                return
            # large frame, but the whole ring cannot hold it: inline
            if self.telemetry is not None:
                self._t_inline_fallbacks.inc()
        if self.telemetry is not None:
            self._t_frames_inline.inc()
        self._mailboxes[target].put(("f", self.epoch, self.rank, tag, blob))

    def send_columns(self, target: int, tag, header: bytes, buffers):
        """Send a struct-of-arrays frame without pickling its payload.

        The wire layout is length-prefixed pieces laid contiguously:
        ``[4B header_len][header][4B buf_len][buf]...`` — the header is
        a small pickled schema tuple, each ``buf`` one column.  On the
        shm path every fixed-width buffer (a ``memoryview``) reaches
        the wire as a raw memcpy into a shared slot, never touching
        pickle; the ``columns_zero_copied`` / ``bytes_zero_copied``
        counters record exactly those buffers.  Object-column buffers
        arrive here already pickled and are copied like any bytes.

        Frames below the shm threshold — or hitting a full ring — ride
        the control queue as one pickled ``("cols", header, buffers)``
        frame instead: correct either way, but pickling bytes is still
        serialization, so the zero-copy counters stay untouched.
        """
        if target == self.rank:
            raise ValueError("a worker does not send frames to itself")
        pieces = [len(header).to_bytes(4, "big"), header]
        for buffer in buffers:
            pieces.append(len(buffer).to_bytes(4, "big"))
            pieces.append(buffer)
        nbytes = sum(len(piece) for piece in pieces)
        if self._ring is not None and nbytes >= self.shm_threshold:
            slots = self._acquire_slots(nbytes)
            if slots is not None:
                self._write_pieces(slots, pieces)
                self.bytes_sent += nbytes
                self.frames_sent += 1
                for buffer in buffers:
                    if isinstance(buffer, memoryview):
                        self.columns_zero_copied += 1
                        self.bytes_zero_copied += len(buffer)
                if self.telemetry is not None:
                    self._t_bytes_sent.inc(nbytes)
                    self._t_frames_shm.inc()
                    for buffer in buffers:
                        if isinstance(buffer, memoryview):
                            self._t_columns_zero_copied.inc()
                            self._t_bytes_zero_copied.inc(len(buffer))
                    self._inflight[slots[0]] = nbytes
                    self._inflight_bytes += nbytes
                self._mailboxes[target].put(
                    ("c", self.epoch, self.rank, tag, nbytes, slots)
                )
                return
            if self.telemetry is not None:
                self._t_inline_fallbacks.inc()
        self.send(
            target, tag,
            ("cols", bytes(header), [bytes(b) for b in buffers]),
        )

    def _write_pieces(self, slots, pieces) -> None:
        """Lay ``pieces`` contiguously across a run of acquired slots."""
        ring = self._ring
        size = ring.slot_bytes
        pos = 0
        for piece in pieces:
            view = memoryview(piece)
            offset = 0
            while offset < len(view):
                slot = slots[pos // size]
                slot_offset = pos % size
                take = min(size - slot_offset, len(view) - offset)
                ring.write_at(slot, slot_offset,
                              view[offset: offset + take])
                pos += take
                offset += take

    def _acquire_slots(self, nbytes: int):
        """Free slots covering ``nbytes``, or ``None`` for inline fallback.

        When every slot is in flight, drain our own mailbox — acks
        return slots; early data frames are buffered, not lost — until
        enough come back or the timeout expires.
        """
        ring = self._ring
        needed = -(-nbytes // ring.slot_bytes)
        if needed > len(ring):
            return None
        slots = ring.try_acquire(needed)
        if slots is not None:
            return slots
        deadline = time.monotonic() + self.timeout
        inbox = self._mailboxes[self.rank]
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise FabricTimeout(
                    f"worker {self.rank} timed out after "
                    f"{self.timeout:.0f}s waiting to reclaim "
                    "shared-memory frame slots (peer likely dead)"
                )
            try:
                message = inbox.get(timeout=min(remaining, 1.0))
            except queue_module.Empty:
                continue
            self._ingest(message)
            slots = ring.try_acquire(needed)
            if slots is not None:
                return slots

    # ------------------------------------------------------------------
    # receiving

    def recv(self, source: int, tag):
        """Block until the next frame of stream ``(source, tag)`` arrives."""
        key = (source, tag)
        deadline = time.monotonic() + self.timeout
        inbox = self._mailboxes[self.rank]
        while True:
            bucket = self._pending.get(key)
            if bucket:
                payload = bucket.popleft()
                # opportunistic drain: pull in whatever already arrived
                # (acks, fast peers' frames) before handing compute back
                self._drain(inbox)
                return payload
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise FabricTimeout(
                    f"worker {self.rank} timed out after {self.timeout:.0f}s "
                    f"waiting for frame {tag!r} from worker {source}"
                )
            try:
                message = inbox.get(timeout=min(remaining, 1.0))
            except queue_module.Empty:
                continue
            self._ingest(message)
            self._drain(inbox)

    def _drain(self, inbox) -> None:
        while True:
            try:
                message = inbox.get_nowait()
            except queue_module.Empty:
                return
            self._ingest(message)

    def _ingest(self, message) -> None:
        kind = message[0]
        if kind == "a":  # ack: our slots came home
            self._ring.release(message[1])
            if self.telemetry is not None:
                self._inflight_bytes -= self._inflight.pop(
                    message[1][0], 0
                )
            return
        if kind in ("s", "c"):
            _, epoch, src, tag, nbytes, slots = message
            payload = None
            if epoch == self.epoch:
                if kind == "s":
                    payload = self._load_shared(src, nbytes, slots)
                else:
                    payload = self._load_columns(src, nbytes, slots)
            # handoff complete either way: return the slots to their owner
            self._mailboxes[src].put(("a", slots))
            if epoch != self.epoch:
                return
        else:
            _, epoch, src, tag, blob = message
            if epoch != self.epoch:
                return
            nbytes = len(blob)
            payload = pickle.loads(blob)
        self.bytes_received += nbytes
        self.frames_received += 1
        self._pending.setdefault((src, tag), deque()).append(payload)

    def _load_shared(self, src: int, nbytes: int, slots):
        """Deserialize a frame straight out of the sender's ring."""
        ring = self._rings[src]
        if len(slots) == 1:
            view = ring.view(slots[0], nbytes)
            try:
                return pickle.loads(view)
            finally:
                view.release()
        parts = []
        remaining = nbytes
        for slot in slots:
            take = min(remaining, ring.slot_bytes)
            view = ring.view(slot, take)
            parts.append(bytes(view))
            view.release()
            remaining -= take
        return pickle.loads(b"".join(parts))

    def _load_columns(self, src: int, nbytes: int, slots):
        """Parse a columnar frame's wire pieces out of the sender's ring.

        Returns the same ``("cols", header, buffers)`` payload the
        inline fallback delivers, so receivers never see which path a
        frame took.  Buffer bytes are copied out — the slots are acked
        (and recyclable) the moment this returns.
        """
        ring = self._rings[src]
        if len(slots) == 1:
            view = ring.view(slots[0], nbytes)
            try:
                return _parse_columns_wire(view)
            finally:
                view.release()
        parts = []
        remaining = nbytes
        for slot in slots:
            take = min(remaining, ring.slot_bytes)
            view = ring.view(slot, take)
            parts.append(bytes(view))
            view.release()
            remaining -= take
        return _parse_columns_wire(memoryview(b"".join(parts)))
