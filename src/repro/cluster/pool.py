"""Persistent shared-memory worker pool: fork once, run many jobs.

The :class:`~repro.cluster.backends.MultiprocessBackend` forks a fresh
set of workers for **every** job and pays a full pickle round-trip for
every frame — which is why `BENCH_backend_scaling.json` showed the
distributed backend *losing* to the in-process simulator.  This module
keeps the same SPMD execution model (same executor, same collectives,
same bitwise-equivalence guarantees) but fixes the runtime plumbing:

* **Workers are long-lived.**  A :class:`WorkerPool` forks its workers
  once; successive ``execute_plan`` / ``run_program`` jobs (and all
  their supersteps) are dispatched to the same processes over per-worker
  job queues.  Jobs cross by value through the closure-capable
  :mod:`~repro.cluster.codec` — the one thing fork-inheritance used to
  provide.
* **Frames travel through shared memory.**  The pool's
  :class:`~repro.cluster.fabric.Fabric` allocates its reusable
  shared-memory frame rings before forking, so cross-worker record
  batches move as one memcpy plus a tiny control message, with explicit
  slot ownership handoff and receives drained opportunistically (see
  :mod:`repro.cluster.fabric`).
* **Crashes are bounded, not hung.**  The gather loop treats any
  dead-without-result worker as a crash regardless of exit code,
  enforces an overall deadline, and escalates ``terminate`` → ``kill``
  on teardown.  A job that fails *cleanly* on every rank (a Python
  exception, a :class:`~repro.cluster.fabric.FabricTimeout` on a
  stalled peer) leaves the pool healthy — workers return to their job
  queue and the next job runs without re-forking; job epochs stop any
  leftover frames from leaking into it.

Registered as backend ``"pool"``:

    env = ExecutionEnvironment(4, backend="pool")

One pool is created lazily per backend instance (so per
``ExecutionEnvironment`` when resolved from the string spelling) and
survives across that environment's jobs; sharing one
:class:`PoolBackend` instance across environments shares the pool.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_module
import time
import traceback
import weakref

from repro.cluster import codec
from repro.cluster.backends import (
    BACKENDS,
    ExecutionBackend,
    WorkerCrash,
    _merge_worker_metrics,
    absorb_plan_payloads,
    reap_workers,
)
from repro.cluster.context import WorkerCluster
from repro.cluster.fabric import Fabric
from repro.observability.health import (
    VITALS,
    HealthMonitor,
    HeartbeatSender,
)

#: this worker process's heartbeat sender (None in the parent and in
#: workers that never ran a telemetry-enabled job)
_heartbeat_sender: HeartbeatSender | None = None


def stop_heartbeats() -> None:
    """Silence this worker's heartbeat thread (fault-injection hook).

    Exists so tests can simulate heartbeat *loss* — a worker that is
    alive but no longer reporting — without killing the process.
    """
    if _heartbeat_sender is not None:
        _heartbeat_sender.stop()


def _pool_worker(job_queue, fabric, rank: int, size: int) -> None:
    """One long-lived worker: loop jobs until the ``None`` sentinel.

    A job that raises — including a :class:`FabricTimeout` on a dead or
    stalled peer — reports an error payload and returns to the queue;
    only process death (or the sentinel) ends the loop.  ``begin_job``
    resets the endpoint's counters, buffered frames, and epoch, so no
    state leaks between consecutive jobs.

    Jobs carrying a ``heartbeat_interval`` (telemetry-enabled plans)
    start a daemon :class:`HeartbeatSender` on first use; it samples the
    worker's :data:`VITALS` and ships ``("hb", ...)`` records over the
    results queue for the parent's :class:`HealthMonitor`, and is paused
    between jobs so idle workers stay silent.
    """
    global _heartbeat_sender
    VITALS.configure(rank)
    endpoint = fabric.endpoint(rank)
    while True:
        message = job_queue.get()
        if message is None:
            return
        job_id, blob = message
        endpoint.begin_job(job_id)
        heartbeats = False
        try:
            body = codec.loads(blob)
            interval = getattr(body, "heartbeat_interval", None)
            if interval:
                heartbeats = True
                VITALS.begin_job(job_id)
                if _heartbeat_sender is None:
                    _heartbeat_sender = HeartbeatSender(
                        fabric.results, VITALS
                    )
                _heartbeat_sender.resume(interval)
            cluster = WorkerCluster(endpoint, size)
            payload = body(cluster)
            metrics = (
                payload.get("metrics") if isinstance(payload, dict) else None
            )
            if metrics is not None:
                # control-plane traffic (barrier votes, allgathers) that
                # no instrumented site attributed; route it through the
                # hook so the total equals the endpoint's wire counter
                leftover = endpoint.bytes_sent - metrics.bytes_shipped
                if leftover > 0:
                    metrics.add_bytes_shipped(leftover)
                # same reconciliation for the zero-copy column counters:
                # exchanges outside an instrumented ship site (microstep
                # routing) still show up in the job's physical totals
                zc_cols = (
                    endpoint.columns_zero_copied - metrics.columns_zero_copied
                )
                zc_bytes = (
                    endpoint.bytes_zero_copied - metrics.bytes_zero_copied
                )
                if zc_cols > 0 or zc_bytes > 0:
                    metrics.add_zero_copied(
                        max(zc_cols, 0), max(zc_bytes, 0)
                    )
            out = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            fabric.results.put(("ok", job_id, rank, out))
        except BaseException:
            fabric.results.put(("error", job_id, rank,
                                traceback.format_exc()))
        finally:
            if heartbeats:
                _heartbeat_sender.pause()
                VITALS.end_job()
                try:
                    # farewell beat: tells the parent monitor this rank
                    # went idle on purpose, so its coming silence is not
                    # heartbeat loss and its progress age means nothing
                    fabric.results.put(
                        ("hb", None, rank, VITALS.heartbeat(interval))
                    )
                except Exception:  # pragma: no cover - pool teardown
                    pass


def _shutdown_pool(workers, job_queues, fabric, force: bool = False) -> None:
    """Best-effort teardown usable from ``close`` and GC finalization."""
    if not force:
        for q in job_queues:
            try:
                q.put(None)
            except Exception:  # pragma: no cover - queue already broken
                force = True
                break
    reap_workers(workers, incomplete=force)
    for q in job_queues:
        try:
            q.cancel_join_thread()
        except Exception:  # pragma: no cover - defensive
            pass
        try:
            q.close()
        except Exception:  # pragma: no cover - defensive
            pass
    fabric.close()


class WorkerPool:
    """``size`` long-lived SPMD workers over one shared-memory fabric."""

    def __init__(self, size: int, timeout: float = 120.0, mp_context=None):
        if mp_context is None:
            try:
                mp_context = multiprocessing.get_context("fork")
            except ValueError as exc:  # pragma: no cover - non-POSIX
                raise RuntimeError(
                    "the pool backend needs the 'fork' start method "
                    "(workers inherit loaded modules and shared-memory "
                    "frame rings)"
                ) from exc
        self.size = size
        self.timeout = timeout
        self.fabric = Fabric(size, mp_context, timeout)
        self.job_queues = [mp_context.Queue() for _ in range(size)]
        self.workers = []
        for rank in range(size):
            process = mp_context.Process(
                target=_pool_worker,
                args=(self.job_queues[rank], self.fabric, rank, size),
                daemon=True,
                name=f"pool-worker-{rank}",
            )
            process.start()
            self.workers.append(process)
        self._job_seq = 0
        #: parent-side heartbeat ledger; populated only when jobs run
        #: with telemetry enabled (workers stay silent otherwise)
        self.monitor = HealthMonitor(size)
        self.closed = False
        self._finalizer = weakref.finalize(
            self, _shutdown_pool, list(self.workers), list(self.job_queues),
            self.fabric,
        )

    @property
    def worker_pids(self) -> list:
        return [worker.pid for worker in self.workers]

    # ------------------------------------------------------------------

    def run_job(self, body):
        """Run ``body(cluster)`` on every worker; gather payloads by rank.

        Raises :class:`WorkerCrash` if any rank errors or dies.  When
        every rank reports (even if some report errors), the pool stays
        open for the next job; a rank that dies or never reports forces
        a full teardown.
        """
        if self.closed:
            raise RuntimeError("worker pool is closed")
        self._job_seq += 1
        job_id = self._job_seq
        blob = codec.dumps(body)
        for q in self.job_queues:
            q.put((job_id, blob))
        return self._gather(job_id)

    def _gather(self, job_id):
        # generous slack over the fabric timeout so a worker's own
        # FabricTimeout (a recoverable, clean error) fires first
        deadline = time.monotonic() + self.timeout * 1.5 + 5.0
        payloads: dict[int, dict] = {}
        errors: dict[int, str] = {}  # insertion-ordered: arrival order
        while len(payloads) + len(errors) < self.size:
            try:
                kind, jid, rank, data = self.fabric.results.get(timeout=0.25)
            except queue_module.Empty:
                # health check first: a stall or heartbeat loss surfaces
                # as a structured warning well before the deadline turns
                # it into a WorkerCrash
                self.monitor.emit()
                dead = [
                    w.name for r, w in enumerate(self.workers)
                    if r not in payloads and r not in errors
                    and not w.is_alive()
                ]
                if dead:
                    # dead without a result is a crash regardless of
                    # exit code (a silent exit(0) must not hang us)
                    self.close(force=True)
                    raise WorkerCrash(
                        f"worker(s) {', '.join(dead)} died without "
                        f"reporting a result{self._health_suffix()}"
                    )
                if time.monotonic() >= deadline:
                    missing = sorted(
                        set(range(self.size)) - set(payloads) - set(errors)
                    )
                    self.close(force=True)
                    raise WorkerCrash(
                        f"gave up waiting for worker(s) {missing} after "
                        f"{self.timeout:.0f}s: no result and no exit"
                        f"{self._health_suffix()}"
                    )
                continue
            if kind == "hb":
                # heartbeat on the control channel (jid is None): feed
                # the monitor and keep waiting for real results
                self.monitor.observe(data)
                self.monitor.emit()
                continue
            if jid != job_id:
                continue  # stale report from an earlier, aborted job
            if kind == "error":
                errors[rank] = data
            else:
                payloads[rank] = pickle.loads(data)
        if errors:
            # the first error to *arrive* is the root cause — a peer's
            # FabricTimeout on the now-dead collective trails it by a
            # full timeout window
            rank, remote_traceback = next(iter(errors.items()))
            others = [f"worker {r}" for r in errors if r != rank]
            trailer = (
                f"\n(also failed: {', '.join(others)})" if others else ""
            )
            raise WorkerCrash(
                f"worker {rank} failed:\n{remote_traceback}{trailer}"
            )
        return [payloads[rank] for rank in range(self.size)]

    def _health_suffix(self) -> str:
        context = self.monitor.context()
        return f"\nlast heartbeats: {context}" if context else ""

    def close(self, force: bool = False) -> None:
        """Shut the pool down; idempotent, safe after worker crashes."""
        if self.closed:
            return
        self.closed = True
        self._finalizer.detach()
        _shutdown_pool(self.workers, self.job_queues, self.fabric,
                       force=force)


class _WorkerSession:
    """The slice of an ``ExecutionEnvironment`` a pool worker needs.

    The parent's environment holds the backend — and through it the
    pool's process handles — so it never crosses the wire; this shim
    carries exactly the attributes the :class:`Executor` reads.
    """

    def __init__(self, job, cluster, metrics):
        self.parallelism = job.parallelism
        self.config = job.config
        self.cluster = cluster
        self.metrics = metrics
        self.checkpoint_interval = job.checkpoint_interval
        self.failure_injector = job.failure_injector
        # pickled as a non-owning, path-only view of the parent's spill
        # directory: the worker allocates files inside the parent tree
        # (which sweeps them) but can never delete it
        self.storage_session = job.storage_session
        self.last_checkpoint_store = None
        self.last_executor = None


class _PlanJob:
    """A compiled plan plus the session knobs its execution needs."""

    def __init__(self, exec_plan, parallelism, config, checkpoint_interval,
                 failure_injector, storage_session=None):
        self.exec_plan = exec_plan
        self.parallelism = parallelism
        self.config = config
        self.checkpoint_interval = checkpoint_interval
        self.failure_injector = failure_injector
        self.storage_session = storage_session
        #: non-None marks this a telemetry job: the worker loop starts
        #: its heartbeat sender at this cadence before calling the body
        self.heartbeat_interval = (
            config.heartbeat_interval_s if config.telemetry else None
        )

    def __call__(self, cluster):
        from repro.runtime.executor import Executor
        from repro.runtime.metrics import MetricsCollector

        metrics = MetricsCollector()
        if self.config.check_invariants:
            from repro.runtime.invariants import attach_checker
            attach_checker(metrics)
        if self.config.trace:
            from repro.observability import attach_tracer
            attach_tracer(metrics, rank=cluster.rank)
        registry = None
        if self.config.telemetry:
            from repro.observability.telemetry import attach_telemetry
            registry = attach_telemetry(
                metrics, rank=cluster.rank, vitals=VITALS
            )
            wall_started = time.perf_counter()
            cpu_started = time.process_time()
        session = _WorkerSession(self, cluster, metrics)
        executor = Executor(session)
        results = executor.run(self.exec_plan)
        payload = {
            "results": results,
            "metrics": metrics,
            "summaries": executor.iteration_summaries,
            "checkpoint_store": session.last_checkpoint_store,
        }
        if registry is not None:
            from repro.observability.telemetry import (
                job_resources_from_metrics,
            )
            # the registry stays home: the payload carries a plain-dict
            # snapshot, and the parent's collector merge never has to
            # reconcile live instruments
            metrics.telemetry = None
            payload["telemetry"] = registry.snapshot()
            payload["resources"] = job_resources_from_metrics(
                job=None, rank=cluster.rank,
                wall_s=time.perf_counter() - wall_started,
                cpu_s=time.process_time() - cpu_started,
                metrics=metrics,
            )
        return payload


class _ProgramJob:
    """A replicated SPMD driver program wrapped into a pool job."""

    def __init__(self, program):
        self.program = program

    def __call__(self, cluster):
        result, metrics = self.program(cluster)
        return {"results": result, "metrics": metrics}


class PoolBackend(ExecutionBackend):
    """Persistent worker pool with shared-memory frame transport."""

    name = "pool"

    def __init__(self, timeout: float = 120.0):
        self.timeout = timeout
        self._pool: WorkerPool | None = None

    # the pool (process handles, queues) never pickles; a backend that
    # rides along inside a pickled closure reconnects lazily
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_pool"] = None
        return state

    @property
    def pool(self) -> WorkerPool | None:
        """The live pool, if one has been created (introspection/tests)."""
        return self._pool

    def _ensure_pool(self, size: int) -> WorkerPool:
        pool = self._pool
        if pool is not None and (pool.closed or pool.size != size):
            pool.close()
            pool = self._pool = None
        if pool is None:
            pool = self._pool = WorkerPool(size, timeout=self.timeout)
        return pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    # ------------------------------------------------------------------

    def execute_plan(self, env, exec_plan):
        job = _PlanJob(
            exec_plan, env.parallelism, env.config,
            getattr(env, "checkpoint_interval", 0),
            getattr(env, "failure_injector", None),
            storage_session=getattr(env, "storage_session", None),
        )
        payloads = self._ensure_pool(env.parallelism).run_job(job)
        return absorb_plan_payloads(env, payloads)

    def run_program(self, program, parallelism):
        payloads = self._ensure_pool(parallelism).run_job(
            _ProgramJob(program)
        )
        merged, timelines = _merge_worker_metrics(payloads)
        self.last_worker_traces = timelines
        return payloads[0]["results"], merged


BACKENDS["pool"] = PoolBackend
