"""Pluggable execution backends over one cluster-context abstraction.

``repro.cluster`` makes the engine/abstraction split of the paper's
Nephele substrate real: the same plans and driver programs run on the
in-process simulator (:class:`SimulatedBackend`, the reference), on one
forked worker process per partition and per job
(:class:`MultiprocessBackend`), or on a **persistent pool** of
long-lived workers exchanging frames through reusable shared-memory
segments (:class:`PoolBackend`, backend name ``"pool"``) — with
barrier-synchronized supersteps and bitwise-identical results and
logical counters across all three.
"""

from repro.cluster.backends import (
    BACKENDS,
    ExecutionBackend,
    MultiprocessBackend,
    SimulatedBackend,
    WorkerCrash,
    resolve_backend,
)
from repro.cluster.context import LOCAL, ClusterContext, LocalCluster, WorkerCluster
from repro.cluster.fabric import Endpoint, Fabric, FabricTimeout, FrameRing
from repro.cluster.pool import PoolBackend, WorkerPool

__all__ = [
    "BACKENDS",
    "ClusterContext",
    "Endpoint",
    "ExecutionBackend",
    "Fabric",
    "FabricTimeout",
    "FrameRing",
    "LOCAL",
    "LocalCluster",
    "MultiprocessBackend",
    "PoolBackend",
    "SimulatedBackend",
    "WorkerCluster",
    "WorkerCrash",
    "WorkerPool",
    "resolve_backend",
]
