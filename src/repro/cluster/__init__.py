"""Pluggable execution backends over one cluster-context abstraction.

``repro.cluster`` makes the engine/abstraction split of the paper's
Nephele substrate real: the same plans and driver programs run either
on the in-process simulator (:class:`SimulatedBackend`, the reference)
or on one forked worker process per partition
(:class:`MultiprocessBackend`), shipping records between workers as
pickled channel frames with barrier-synchronized supersteps.
"""

from repro.cluster.backends import (
    BACKENDS,
    ExecutionBackend,
    MultiprocessBackend,
    SimulatedBackend,
    WorkerCrash,
    resolve_backend,
)
from repro.cluster.context import LOCAL, ClusterContext, LocalCluster, WorkerCluster
from repro.cluster.fabric import Endpoint, Fabric, FabricTimeout

__all__ = [
    "BACKENDS",
    "ClusterContext",
    "Endpoint",
    "ExecutionBackend",
    "Fabric",
    "FabricTimeout",
    "LOCAL",
    "LocalCluster",
    "MultiprocessBackend",
    "SimulatedBackend",
    "WorkerCluster",
    "WorkerCrash",
    "resolve_backend",
]
