"""Figure 8: PageRank per-iteration times on Wikipedia are flat."""

from repro.bench.experiments import fig8
from repro.bench.reporting import persist_report


def test_fig8_pagerank_per_iteration(run_experiment):
    result = run_experiment(fig8.run)
    persist_report("fig8_pagerank_per_iteration", result.report())
    for m in result.measurements:
        times = m.iteration_seconds
        assert len(times) >= 20
        steady = sorted(times[1:])
        # constant iteration times: middle 80% of steady-state iterations
        # within a small factor of each other
        window = steady[len(steady) // 10: -max(1, len(steady) // 10)]
        assert max(window) < 3 * min(window), m.system
