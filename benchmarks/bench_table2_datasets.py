"""Table 2: dataset properties of the synthetic stand-ins."""

from repro.bench.experiments import table2
from repro.bench.reporting import persist_report


def test_table2_datasets(run_experiment):
    result = run_experiment(table2.run)
    persist_report("table2_datasets", result.report())
    by_name = {row[0]: row for row in result.rows}
    # Table 2's ratios: Hollywood is the dense outlier, Twitter denser
    # than the web graphs, Webbase has an extreme diameter.
    avg = {name: float(row[6]) for name, row in by_name.items()}
    assert avg["Hollywood"] > 3 * avg["Twitter"]
    assert avg["Twitter"] > avg["Wikipedia-EN"]
    diam = {name: int(row[7]) for name, row in by_name.items()}
    assert diam["Webbase"] > 100
