"""Figure 7: PageRank total execution time across the four systems."""

from repro.bench.experiments import fig7
from repro.bench.reporting import persist_report


def test_fig7_pagerank_total(run_experiment):
    result = run_experiment(fig7.run)
    persist_report("fig7_pagerank_total", result.report())
    by_key = {(m.dataset, m.system): m for m in result.measurements}
    datasets = {m.dataset for m in result.measurements}
    for dataset in datasets:
        times = [m.seconds for m in result.measurements
                 if m.dataset == dataset]
        # the paper's expectation: bulk PageRank costs are comparable
        # across systems (no order-of-magnitude outliers)
        assert max(times) < 25 * min(times)
    # every system performed 20 iterations everywhere
    for m in result.measurements:
        assert m.iterations >= 20
