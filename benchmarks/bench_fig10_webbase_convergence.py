"""Figure 10: incremental CC to convergence on the huge-diameter graph."""

from repro.bench.experiments import fig10
from repro.bench.reporting import persist_report


def test_fig10_webbase_convergence(run_experiment):
    result = run_experiment(fig10.run)
    persist_report("fig10_webbase_convergence", result.report())
    # hundreds of supersteps, like the paper's 744
    assert result.supersteps_to_converge > 100
    # per-iteration work decays by orders of magnitude
    stats = result.incremental.per_iteration
    peak = max(s.workset_size for s in stats[:5])
    floor = stats[len(stats) // 2].workset_size
    assert floor < peak / 100
    # extrapolated bulk is far slower than incremental-to-convergence
    # (the paper's x75; our scaled graphs give a smaller but large factor)
    assert result.speedup > 5
