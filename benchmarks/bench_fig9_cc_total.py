"""Figure 9: Connected Components total times, five configurations."""

from repro.bench.experiments import fig9
from repro.bench.reporting import persist_report


def test_fig9_cc_total(run_experiment):
    result = run_experiment(fig9.run)
    persist_report("fig9_cc_total", result.report())
    time_of = {
        (m.dataset, m.system): m.seconds for m in result.measurements
    }
    for dataset in ("wikipedia", "twitter", "webbase"):
        bulk = time_of[(dataset, "Stratosphere Full")]
        best_incremental = min(
            time_of[(dataset, "Stratosphere Incr.")],
            time_of[(dataset, "Stratosphere Micro")],
        )
        # incremental iterations beat bulk on the sparse-dependency graphs
        assert best_incremental < bulk, dataset
        # ... and beat the bulk Spark baseline clearly
        assert best_incremental < time_of[(dataset, "Spark")], dataset
    # results agree across configurations on the datasets that ran to
    # convergence (webbase is capped at 20 supersteps here, so its
    # intermediate states legitimately differ per execution strategy)
    for dataset in {m.dataset for m in result.measurements} - {"webbase"}:
        results = [
            m.result for m in result.measurements if m.dataset == dataset
        ]
        assert all(r == results[0] for r in results[1:]), dataset
