"""Benchmark-suite configuration.

Each bench regenerates one paper artifact (table or figure), asserts its
qualitative shape, and persists the full report to
``benchmarks/results/<name>.txt`` (also echoed to stdout; run with
``-s`` to see it live).  Wall-clock numbers are collected by
pytest-benchmark with a single round — these are minutes-long
experiment drivers, not microbenchmarks.
"""

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment function once under pytest-benchmark timing."""
    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    return runner
