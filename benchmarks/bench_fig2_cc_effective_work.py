"""Figure 2: per-iteration effective work of incremental CC on FOAF."""

from repro.bench.experiments import fig2
from repro.bench.reporting import persist_report


def test_fig2_cc_effective_work(run_experiment):
    result = run_experiment(fig2.run)
    persist_report("fig2_cc_effective_work", result.report())
    stats = result.per_iteration
    # converged: final workset empty
    assert stats[-1].workset_size == 0
    # the paper's decay: by iteration 5 the touched-vertex count has
    # collapsed by orders of magnitude relative to the first iteration
    peak = max(s.solution_accesses for s in stats[:3])
    late = stats[min(len(stats) - 1, 5)].solution_accesses
    assert late < peak / 20
    # changes track the workset: each superstep changes no more vertices
    # than it had workset entries
    assert all(s.delta_size <= max(s.workset_size, s.solution_accesses)
               for s in stats)
    # the long small tail exists (the paper's x-axis runs to ~34)
    assert len(stats) >= 15
