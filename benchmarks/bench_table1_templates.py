"""Table 1: the iteration templates agree and show the expected work profiles."""

from repro.bench.experiments import table1
from repro.bench.reporting import persist_report


def test_table1_templates(run_experiment):
    result = run_experiment(table1.run)
    persist_report("table1_templates", result.report())
    assert all(r.agrees for r in result.runs)
