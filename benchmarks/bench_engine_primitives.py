"""Engine-primitive microbenchmarks (multi-round, statistical).

Unlike the single-shot experiment drivers, these run many rounds so
pytest-benchmark's statistics are meaningful — they track performance
regressions in the substrate the paper experiments are built from:
shipping channels, join drivers, the solution-set index, and the
Pregel message loop.
"""

import pytest

from repro.common.keys import KeyExtractor
from repro.dataflow.contracts import Contract
from repro.dataflow.graph import LogicalNode
from repro.iterations.solution_set import SolutionSetIndex
from repro.runtime import channels, drivers
from repro.runtime.metrics import MetricsCollector
from repro.runtime.plan import BROADCAST, partition_on

RECORDS = [((i * 7919) % 4096, i) for i in range(20_000)]
PARTS = channels.round_robin(RECORDS, 4)


class TestShipping:
    def test_hash_partition_throughput(self, benchmark):
        out = benchmark(
            channels.ship, PARTS, partition_on((0,)), 4, None
        )
        assert sum(len(p) for p in out) == len(RECORDS)

    def test_broadcast_throughput(self, benchmark):
        out = benchmark(channels.ship, PARTS, BROADCAST, 4, None)
        assert len(out[0]) == len(RECORDS)


class TestJoinDrivers:
    def _node(self):
        left_src = LogicalNode(Contract.SOURCE, data=[])
        right_src = LogicalNode(Contract.SOURCE, data=[])
        return LogicalNode(
            Contract.MATCH, [left_src, right_src],
            udf=lambda l, r: (l[0], l[1], r[1]),
            key_fields=[(0,), (0,)],
        )

    def test_hash_join_throughput(self, benchmark):
        node = self._node()
        left = RECORDS[:8000]
        right = RECORDS[8000:16000]
        metrics = MetricsCollector()
        out = benchmark(
            drivers.run_hash_join, node, [left, right], metrics, True
        )
        assert out  # plenty of matches on 4096 keys

    def test_sort_merge_join_throughput(self, benchmark):
        node = self._node()
        left = RECORDS[:8000]
        right = RECORDS[8000:16000]
        metrics = MetricsCollector()
        out = benchmark(
            drivers.run_sort_merge_join, node, [left, right], metrics
        )
        assert out


class TestSolutionSet:
    def test_build_and_probe(self, benchmark):
        def build_probe():
            index = SolutionSetIndex.build(
                RECORDS[:10_000], 0, 4, metrics=None
            )
            hits = 0
            for key, _v in RECORDS[:10_000:7]:
                if index.lookup_global(key) is not None:
                    hits += 1
            return hits

        assert benchmark(build_probe) > 0

    def test_delta_union_throughput(self, benchmark):
        base = [(k, 1 << 20) for k in range(4096)]
        deltas = [(k % 4096, v) for k, v in RECORDS[:10_000]]

        def apply():
            index = SolutionSetIndex.build(
                base, 0, 4, should_replace=lambda n, o: n[1] < o[1]
            )
            return len(index.apply_delta(deltas))

        assert benchmark(apply) > 0


class TestPregelLoop:
    def test_superstep_loop_throughput(self, benchmark):
        from repro.graphs import erdos_renyi
        from repro.systems.pregel import PregelMaster
        graph = erdos_renyi(2000, 6.0, seed=2)

        def run():
            def compute(ctx, messages):
                if ctx.superstep == 0:
                    ctx.send_message_to_all_neighbors(ctx.state)
                else:
                    best = min(messages, default=ctx.state)
                    if best < ctx.state:
                        ctx.state = best
                        ctx.send_message_to_all_neighbors(best)
                ctx.vote_to_halt()

            master = PregelMaster(graph, compute,
                                  initial_state=lambda v: v, combiner=min)
            master.run(max_supersteps=3)
            return master.supersteps_run

        assert benchmark(run) >= 3
