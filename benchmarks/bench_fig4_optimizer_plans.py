"""Figure 4: the optimizer derives both PageRank plans from statistics."""

from repro.bench.experiments import fig4
from repro.bench.reporting import persist_report


def test_fig4_optimizer_plans(run_experiment):
    result = run_experiment(fig4.run)
    persist_report("fig4_optimizer_plans", result.report())
    small, large = result.choices
    # the headline Figure-4 distinction: replicate the small rank vector
    # (Mahout-style) vs partition the large one (Pegasus-style)
    assert small.rank_ship == "broadcast"
    assert large.rank_ship.startswith("partition")
    assert large.matrix_ship.startswith("partition")
    # the matrix is never replicated (memory budget)
    assert small.matrix_ship != "broadcast"
    # under the small-vector plan the aggregation's shuffle volume is
    # negligible: either the combined contributions move (≈|p| records
    # per partition) or A was pre-partitioned on tid (the paper's exact
    # left plan) — both are orders below the repartition plan's traffic
    assert small.estimated_cost < large.estimated_cost / 10
