"""Extension (Sec. 7.2): adaptive PageRank as an incremental iteration."""

from repro.bench.experiments import extensions
from repro.bench.reporting import persist_report


def test_ext_adaptive_pagerank(run_experiment):
    result = run_experiment(extensions.run_adaptive_pagerank)
    persist_report("ext_adaptive_pagerank", result.report())
    # the shape summary carries the workset decay; sanity-check the rows
    assert len(result.rows) == 2
