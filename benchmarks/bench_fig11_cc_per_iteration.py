"""Figure 11: CC per-iteration times, six configurations on Wikipedia."""

from repro.bench.experiments import fig11
from repro.bench.reporting import persist_report


def test_fig11_cc_per_iteration(run_experiment):
    result = run_experiment(fig11.run)
    persist_report("fig11_cc_per_iteration", result.report())
    by_system = {m.system: m for m in result.measurements}

    def decay(system):
        times = by_system[system].iteration_seconds
        return times[0] / max(min(times[3:]), 1e-9)

    # incremental variants converge to a much lower per-iteration time
    assert decay("Stratosphere Incr.") > 4
    assert decay("Giraph") > 4
    # bulk Stratosphere stays comparatively flat
    assert decay("Stratosphere Full") < decay("Stratosphere Incr.")
    # the simulated-incremental Spark variant decays less than the true
    # incremental ones: it pays for copying unchanged state every round
    spark_sim = by_system["Spark Sim. Incr."].iteration_seconds
    strat_incr = by_system["Stratosphere Incr."].iteration_seconds
    last_common = min(len(spark_sim), len(strat_incr)) - 1
    assert spark_sim[last_common] > strat_incr[last_common]
