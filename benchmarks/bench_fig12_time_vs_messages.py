"""Figure 12: per-iteration time is ~linear in candidate messages."""

from repro.bench.experiments import fig12
from repro.bench.reporting import persist_report


def test_fig12_time_vs_messages(run_experiment):
    result = run_experiment(fig12.run)
    persist_report("fig12_time_vs_messages", result.report())
    by_system = {s.system: s for s in result.series}
    # time correlates with message volume for the incremental variants
    # (a per-superstep time floor — also visible in the paper's Figure 10
    # — caps the correlation once worksets get tiny)
    assert by_system["Stratosphere Micro"].correlation > 0.8
    assert by_system["Stratosphere Incr."].correlation > 0.5
    micro = by_system["Stratosphere Micro"]
    incr = by_system["Stratosphere Incr."]
    # both fitted costs are positive and finite
    assert micro.slope_us_per_message > 0
    assert incr.slope_us_per_message > 0
    # the microstep variant chews through a larger, more redundant
    # candidate volume (the paper's "many more redundant candidate
    # component IDs") ...
    assert sum(micro.messages) > sum(incr.messages)
    # ... at a lower marginal cost per candidate (the paper's "much
    # lower slope"); totals can still favour the batch variant because
    # of per-element fixed overheads on this substrate (EXPERIMENTS.md)
    assert micro.slope_us_per_message < incr.slope_us_per_message
