"""Ablations: optimizer vs naive planner; delta execution modes."""

from repro.bench.experiments import extensions
from repro.bench.reporting import persist_report


def test_ablation_optimizer_vs_naive(run_experiment):
    result = run_experiment(extensions.run_optimizer_ablation)
    persist_report("ablation_optimizer", result.report())
    by_planner = {row[0]: row for row in result.rows}
    optimized_msgs = by_planner["cost-based optimizer"][2]
    naive_msgs = by_planner["naive planner"][2]
    # the optimizer never ships more than the naive plan on this workload
    assert optimized_msgs <= naive_msgs


def test_ablation_execution_modes(run_experiment):
    result = run_experiment(extensions.run_modes_ablation)
    persist_report("ablation_modes", result.report())
    assert all(row[-1] == "yes" for row in result.rows)


def test_ablation_parallelism_scaling(run_experiment):
    result = run_experiment(extensions.run_parallelism_scaling)
    persist_report("ablation_parallelism", result.report())
    by_width = {row[0]: row for row in result.rows}
    # at P=1 nothing is remote
    assert by_width[1][1] == 0 and by_width[1][2] == 0
    # broadcast traffic grows ~(P-1)·|p|, faster than the partition
    # plan's — their ratio widens with the cluster
    assert by_width[8][1] > by_width[2][1] * 2
    assert float(by_width[8][3]) > float(by_width[2][3])
