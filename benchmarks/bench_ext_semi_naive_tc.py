"""Extension (Sec. 7.1): delta iterations evaluate recursion semi-naively."""

from repro.bench.experiments import extensions
from repro.bench.reporting import persist_report


def test_ext_semi_naive_tc(run_experiment):
    result = run_experiment(extensions.run_semi_naive_tc)
    persist_report("ext_semi_naive_tc", result.report())
    by_label = {row[0]: row for row in result.rows}
    naive = by_label["naive (bulk iteration)"]
    semi = by_label["semi-naive (delta iteration)"]
    assert naive[-1] == semi[-1] == "yes"
    # semi-naive touches a fraction of the records the naive plan does
    assert semi[3] < naive[3] / 2
